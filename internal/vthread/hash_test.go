package vthread

import "testing"

// twoThreadProg builds a tiny racy program; bump selects between two
// variants that differ only in an integer literal inside the main body.
func twoThreadProg(init, bump int) *CompiledProgram {
	p := NewBuilder()
	m := p.Mutex("m")
	v := p.Var("v", init)
	w := p.Body(0, 0)
	w.Lock(m)
	w.AddVar(v, bump)
	w.Unlock(m)
	mn := p.Main()
	h1 := mn.Spawn(w)
	h2 := mn.Spawn(w)
	mn.Join(h1)
	mn.Join(h2)
	got := mn.Load(v)
	mn.Assert(func(t *Thread) bool { return t.Reg(got) >= init }, "v=%d", got)
	return p.Build()
}

func TestProgramHashStable(t *testing.T) {
	a := ProgramHash(twoThreadProg(0, 1), 0)
	b := ProgramHash(twoThreadProg(0, 1), 0)
	if a != b {
		t.Fatalf("identical programs hash differently: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("hash %q is not a 16-digit hex string", a)
	}
	// Re-hashing the same value must not drift either (the canonical runs
	// may not leave state behind).
	cp := twoThreadProg(0, 1)
	if h1, h2 := ProgramHash(cp, 0), ProgramHash(cp, 0); h1 != h2 {
		t.Fatalf("re-hashing one program value drifts: %s vs %s", h1, h2)
	}
}

func TestProgramHashSensitivity(t *testing.T) {
	base := ProgramHash(twoThreadProg(0, 1), 0)
	if got := ProgramHash(twoThreadProg(7, 1), 0); got == base {
		t.Fatalf("changing a declared initial value did not change the hash")
	}
	// The bump literal lives inside an operand closure — invisible to the
	// structural walk, caught by the behavioral component.
	if got := ProgramHash(twoThreadProg(0, 2), 0); got == base {
		t.Fatalf("changing an operand literal did not change the hash")
	}
	// A structurally different program: one more worker thread.
	p := NewBuilder()
	v := p.Var("v", 0)
	w := p.Body(0, 0)
	w.AddVar(v, 1)
	mn := p.Main()
	h1 := mn.Spawn(w)
	h2 := mn.Spawn(w)
	h3 := mn.Spawn(w)
	mn.Join(h1)
	mn.Join(h2)
	mn.Join(h3)
	if got := ProgramHash(p.Build(), 0); got == base {
		t.Fatalf("a different thread structure did not change the hash")
	}
}

func TestProgramHashClosureForm(t *testing.T) {
	// Closure programs hash behaviorally: the variants here differ in
	// thread structure, which the canonical runs observe in the trace.
	mk := func(n int) Program {
		return func(t0 *Thread) {
			v := t0.NewVar("v", 0)
			w := func(tw *Thread) { v.Add(tw, 1) }
			var ts []*Thread
			for i := 0; i < 1+n; i++ {
				ts = append(ts, t0.Spawn(w))
			}
			for _, c := range ts {
				t0.Join(c)
			}
		}
	}
	h1 := ProgramHash(mk(1), 0)
	if h2 := ProgramHash(mk(1), 0); h1 != h2 {
		t.Fatalf("identical closure programs hash differently: %s vs %s", h1, h2)
	}
	if h3 := ProgramHash(mk(2), 0); h3 == h1 {
		t.Fatalf("behaviorally different closure programs hash equal")
	}
	// Compiled and closure forms of even the same behavior must not
	// collide: the compiled form carries the structural component.
	if hc := ProgramHash(twoThreadProg(0, 1), 0); hc == h1 {
		t.Fatalf("compiled and closure hashes collide: %s", hc)
	}
}
