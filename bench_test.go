// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus ablations for the design choices DESIGN.md §8
// calls out. The table/figure benches run the real study pipeline at a
// reduced schedule limit per iteration (the full 10,000-schedule study is
// cmd/sctbench's job; a testing.B iteration must be repeatable in
// milliseconds-to-seconds). Regenerating the paper's numbers:
//
//	go run ./cmd/sctbench -limit 10000 -maple
package sctbench

import (
	"fmt"
	"runtime"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/mapleidiom"
	"sctbench/internal/pct"
	"sctbench/internal/race"
	"sctbench/internal/report"
	"sctbench/internal/study"
	"sctbench/internal/vthread"
)

// benchLimit is the per-iteration schedule budget for table benches.
const benchLimit = 100

// smallSuite is a representative cross-section: one trivial, one
// bounded-bug, one barrier, one starvation benchmark.
func smallSuite() []*bench.Benchmark {
	names := []string{
		"CS.account_bad",
		"CS.reorder_3_bad",
		"splash2.lu",
		"chess.WSQ",
	}
	out := make([]*bench.Benchmark, 0, len(names))
	for _, n := range names {
		b := bench.ByName(n)
		if b == nil {
			panic("missing benchmark " + n)
		}
		out = append(out, b)
	}
	return out
}

// BenchmarkTable1 regenerates the suite-overview table (static metadata;
// the benchmark measures registry traversal and table construction).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		if len(rows) != 8 {
			b.Fatalf("Table 1 has %d suites, want 8", len(rows))
		}
	}
}

// BenchmarkTable2 regenerates the trivial-benchmark properties from a
// study pass over the small suite.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := study.RunAll(smallSuite(), study.Config{Limit: benchLimit, Seed: 1, RaceRuns: 3, Parallelism: 1})
		if report.Table2(rows, benchLimit) == "" {
			b.Fatal("empty Table 2")
		}
	}
}

// BenchmarkTable3 regenerates Table 3 rows, one sub-benchmark per
// technique over the small suite.
func BenchmarkTable3(b *testing.B) {
	techs := map[string][]explore.Technique{
		"IPB":  {explore.IPB},
		"IDB":  {explore.IDB},
		"DFS":  {explore.DFS},
		"Rand": {explore.Rand},
	}
	for name, ts := range techs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := study.RunAll(smallSuite(), study.Config{
					Limit: benchLimit, Seed: 1, RaceRuns: 3,
					Techniques: ts, Parallelism: 1,
				})
				if report.Table3(rows, benchLimit) == "" {
					b.Fatal("empty Table 3")
				}
			}
		})
	}
}

// BenchmarkFig2Venn regenerates both Figure 2 Venn diagrams.
func BenchmarkFig2Venn(b *testing.B) {
	rows := study.RunAll(smallSuite(), study.Config{Limit: benchLimit, Seed: 1, RaceRuns: 3, WithMaple: true, Parallelism: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := report.VennSystematic(rows)
		c := report.VennVsNaive(rows)
		if len(a.Regions)+len(a.None) == 0 || len(c.Regions)+len(c.None) == 0 {
			b.Fatal("empty Venn")
		}
	}
}

// BenchmarkFig3 regenerates the Figure 3 scatter series (schedules to
// first bug, IPB vs IDB).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := study.RunAll(smallSuite(), study.Config{
			Limit: benchLimit, Seed: 1, RaceRuns: 3,
			Techniques: []explore.Technique{explore.IPB, explore.IDB}, Parallelism: 1,
		})
		if len(report.Fig3Series(rows, benchLimit)) == 0 {
			b.Fatal("empty Figure 3 series")
		}
	}
}

// BenchmarkFig4 regenerates the Figure 4 worst-case series (non-buggy
// schedules within the discovering bound).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := study.RunAll(smallSuite(), study.Config{
			Limit: benchLimit, Seed: 1, RaceRuns: 3,
			Techniques: []explore.Technique{explore.IPB, explore.IDB}, Parallelism: 1,
		})
		if len(report.Fig4Series(rows, benchLimit)) == 0 {
			b.Fatal("empty Figure 4 series")
		}
	}
}

// --- Ablations (DESIGN.md §8) ---

// BenchmarkAblationHandoff measures the substrate's context-switch cost:
// one visible operation = one park/grant handoff.
func BenchmarkAblationHandoff(b *testing.B) {
	var program vthread.Program = func(t *vthread.Thread) {
		for i := 0; i < 1000; i++ {
			t.Yield()
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := vthread.NewWorld(vthread.Options{Chooser: vthread.RoundRobin()})
		out := w.Run(program)
		if len(out.Trace) != 1000 {
			b.Fatalf("trace %d, want 1000", len(out.Trace))
		}
	}
}

// lockyProgram has one racy flag and lots of well-locked traffic — the
// shape race promotion pays off on.
func lockyProgram() vthread.Program {
	return func(t *vthread.Thread) {
		m := t.NewMutex("m")
		safe := t.NewVar("safe", 0)
		racy := t.NewVar("racy", 0)
		worker := func(w *vthread.Thread) {
			for i := 0; i < 4; i++ {
				m.Lock(w)
				safe.Add(w, 1)
				m.Unlock(w)
			}
			racy.Store(w, 1)
		}
		a := t.Spawn(worker)
		c := t.Spawn(worker)
		t.Join(a)
		t.Join(c)
	}
}

// BenchmarkAblationRacePromotion compares exploration with all accesses
// visible against promoted-only visibility (the paper's §5 reduction).
func BenchmarkAblationRacePromotion(b *testing.B) {
	racy := race.RunPhase(race.PhaseConfig{Program: lockyProgram(), Seed: 5}).Racy
	vis := race.Promoted(racy)
	b.Run("AllVisible", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := explore.RunIterative(explore.Config{Program: lockyProgram(), Limit: benchLimit}, explore.CostDelays)
			_ = r.Schedules
		}
	})
	b.Run("PromotedOnly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := explore.RunIterative(explore.Config{Program: lockyProgram(), Visible: vis, Limit: benchLimit}, explore.CostDelays)
			_ = r.Schedules
		}
	})
}

// BenchmarkAblationPCT compares PCT against Rand and IDB on the same
// program (§7 related work).
func BenchmarkAblationPCT(b *testing.B) {
	program := func() vthread.Runnable { return bench.ByName("CS.twostage_bad").New() }
	b.Run("PCT_d2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pct.Run(pct.Config{Program: program, Runs: benchLimit, Depth: 2, Seed: uint64(i)})
		}
	})
	b.Run("Rand", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			explore.RunRand(explore.Config{Program: program(), Limit: benchLimit, Seed: uint64(i)})
		}
	})
	b.Run("IDB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			explore.RunIterative(explore.Config{Program: program(), Limit: benchLimit}, explore.CostDelays)
		}
	})
}

// BenchmarkAblationMaple measures the idiom algorithm's cost profile
// (profile runs + one active run per candidate).
func BenchmarkAblationMaple(b *testing.B) {
	bm := bench.ByName("CS.reorder_3_bad")
	for i := 0; i < b.N; i++ {
		mapleidiom.Run(mapleidiom.Config{Program: bm.New, Seed: uint64(i)})
	}
}

// BenchmarkAblationSleepSets contrasts plain DFS with sleep-set
// partial-order reduction (§7's future-work extension): same bugs, far
// fewer counted schedules on programs with independent operations.
func BenchmarkAblationSleepSets(b *testing.B) {
	program := func() vthread.Runnable { return bench.ByName("CS.stack_bad").New() }
	b.Run("DFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			explore.RunDFS(explore.Config{Program: program(), Limit: benchLimit})
		}
	})
	b.Run("SleepSet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			explore.RunSleepSetDFS(explore.Config{Program: program(), Limit: benchLimit})
		}
	})
}

// BenchmarkAblationBoundedVsUnbounded contrasts the frontier growth of
// bounded search against unbounded DFS on a program whose space dwarfs
// the limit (the paper's core motivation for schedule bounding).
func BenchmarkAblationBoundedVsUnbounded(b *testing.B) {
	program := func() vthread.Runnable { return bench.ByName("CS.reorder_4_bad").New() }
	b.Run("DFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			explore.RunDFS(explore.Config{Program: program(), Limit: benchLimit})
		}
	})
	b.Run("IDB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			explore.RunIterative(explore.Config{Program: program(), Limit: benchLimit}, explore.CostDelays)
		}
	})
}

// BenchmarkParallelRand measures the wall-clock effect of sharding the
// naive random scheduler's independent runs over a worker pool — the
// embarrassingly parallel end of the parallel driver, expected to scale
// near-linearly up to GOMAXPROCS.
func BenchmarkParallelRand(b *testing.B) {
	program := func() vthread.Runnable { return bench.ByName("CS.twostage_bad").New() }
	const limit = 2000
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				explore.RunRand(explore.Config{
					Program: program(), Limit: limit, Seed: uint64(i), Workers: workers,
				})
			}
		})
	}
}

// BenchmarkParallelIDB measures the tree-partitioned parallel driver on
// iterative delay bounding: the same schedule counts as sequential IDB,
// spread over work-stealing workers with the next bound speculated behind
// the active one.
func BenchmarkParallelIDB(b *testing.B) {
	program := func() vthread.Runnable { return bench.ByName("CS.reorder_5_bad").New() }
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				explore.RunIterative(explore.Config{
					Program: program(), Workers: workers,
				}, explore.CostDelays)
			}
		})
	}
}

// BenchmarkParallelDFS measures the work-stealing pool on an unbounded
// depth-first search truncated at the schedule limit.
func BenchmarkParallelDFS(b *testing.B) {
	program := func() vthread.Runnable { return bench.ByName("CS.reorder_4_bad").New() }
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				explore.RunDFS(explore.Config{
					Program: program(), Limit: 2000, Workers: workers,
				})
			}
		})
	}
}
