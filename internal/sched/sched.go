// Package sched defines the schedule formalism of §2 of Thomson et al.
// (PPoPP'14): schedules as thread-id sequences, preemption counts, and the
// delay counts of delay-bounded scheduling over the non-preemptive
// round-robin deterministic scheduler.
//
// The cost functions are written incrementally — cost of appending one
// choice to a schedule prefix — because that is how both the execution
// substrate (online accounting) and the exploration engines (pruning)
// consume them. The recursive definitions of the paper are recovered by
// summation, which the property tests verify.
package sched

// ThreadID identifies a virtual thread; ids are assigned in creation order
// starting at 0, which is what round-robin distance is defined over.
type ThreadID int

// NoThread is the "no previous step" sentinel for the first scheduling
// point (a schedule of length zero or one has no preemptions or delays).
const NoThread ThreadID = -1

// Schedule is a list of choices: the thread executing at each step of an
// execution (§2), interleaved — for programs using the multi-way select —
// with case-decision entries whose value is the committed case index,
// each positioned right after its selecting thread's entry (see
// vthread.Context.SelectOf). Replay consumes both kinds uniformly by
// position.
type Schedule []ThreadID

// Clone returns an independent copy of the schedule.
func (s Schedule) Clone() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two schedules are identical.
func (s Schedule) Equal(o Schedule) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the schedule as "<T0 T0 T1 ...>", with ASCII angle
// brackets so the output is grep- and terminal-safe.
func (s Schedule) String() string {
	out := make([]byte, 0, 4*len(s)+8)
	out = append(out, "<"...)
	for i, t := range s {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, 'T')
		out = appendInt(out, int(t))
	}
	return string(append(out, '>'))
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// ContextSwitches counts the steps at which execution switches threads
// (preemptive or not).
func (s Schedule) ContextSwitches() int {
	n := 0
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			n++
		}
	}
	return n
}

// PCStep is the preemption cost of scheduling choice after a step by last,
// where lastEnabled reports whether last is still enabled at this point:
//
//	PC(α·t) = PC(α) + 1  if last(α) ≠ t ∧ last(α) ∈ enabled(α)
//	PC(α·t) = PC(α)      otherwise
//
// At the first step (last == NoThread) the cost is zero.
func PCStep(last ThreadID, lastEnabled bool, choice ThreadID) int {
	if last == NoThread {
		return 0
	}
	if choice != last && lastEnabled {
		return 1
	}
	return 0
}

// Distance is the round-robin distance from x to y over n threads: the
// unique d in [0, n) with (x+d) mod n == y.
func Distance(x, y ThreadID, n int) int {
	if n <= 0 {
		panic("sched: Distance over non-positive thread count")
	}
	d := int(y-x) % n
	if d < 0 {
		d += n
	}
	return d
}

// DCStep is the delay cost of scheduling choice after a step by last, over
// n threads with the given enabledness predicate: the number of enabled
// threads skipped when moving round-robin from last to choice,
//
//	delays(α,t) = |{x : 0 ≤ x < distance(last(α),t) ∧ (last(α)+x) mod N ∈ enabled(α)}|
//
// At the first step (last == NoThread) the cost is zero.
func DCStep(last, choice ThreadID, n int, enabled func(ThreadID) bool) int {
	if last == NoThread {
		return 0
	}
	d := Distance(last, choice, n)
	delays := 0
	for x := 0; x < d; x++ {
		if enabled(ThreadID((int(last) + x) % n)) {
			delays++
		}
	}
	return delays
}

// CanonicalOrder returns the choice order used by every systematic engine
// in this repository: the deterministic scheduler's pick first (the
// non-preemptive continuation when last is enabled, otherwise the next
// enabled thread round-robin from last), then the remaining enabled threads
// in round-robin order. Consequently the first terminal schedule explored
// by DFS, iterative preemption bounding and iterative delay bounding is the
// same non-preemptive round-robin schedule, as §3 of the paper requires.
//
// enabled must be non-empty and sorted ascending. The result is freshly
// allocated; exploration hot paths that recycle buffers should use
// AppendCanonicalOrder instead.
func CanonicalOrder(enabled []ThreadID, last ThreadID, n int) []ThreadID {
	return AppendCanonicalOrder(make([]ThreadID, 0, len(enabled)), enabled, last, n)
}

// AppendCanonicalOrder appends the canonical choice order (see
// CanonicalOrder) to dst and returns the extended slice. With a dst of
// sufficient capacity it performs no allocation, which is what makes the
// exploration engines' per-node bookkeeping allocation-free when they
// recycle node buffers through a free list.
func AppendCanonicalOrder(dst, enabled []ThreadID, last ThreadID, n int) []ThreadID {
	if len(enabled) == 0 {
		panic("sched: CanonicalOrder over empty enabled set")
	}
	base := len(dst)
	start := last
	if start == NoThread {
		start = 0
	}
	// Walk the ring once starting at last (so the continuation, cost 0 for
	// both PC and DC, comes first), appending enabled threads in ring order.
	for x := 0; x < n; x++ {
		id := ThreadID((int(start) + x) % n)
		for _, e := range enabled {
			if e == id {
				dst = append(dst, id)
				break
			}
		}
	}
	if len(dst)-base != len(enabled) {
		panic("sched: enabled ids out of range of thread count")
	}
	return dst
}

// CanonicalFirst returns CanonicalOrder(enabled, last, n)[0] — the
// deterministic scheduler's pick — without allocating. It is the
// round-robin continuation choosers use at every scheduling point where
// the previous thread blocked or exited.
func CanonicalFirst(enabled []ThreadID, last ThreadID, n int) ThreadID {
	if len(enabled) == 0 {
		panic("sched: CanonicalFirst over empty enabled set")
	}
	start := last
	if start == NoThread {
		start = 0
	}
	for x := 0; x < n; x++ {
		id := ThreadID((int(start) + x) % n)
		for _, e := range enabled {
			if e == id {
				return id
			}
		}
	}
	panic("sched: enabled ids out of range of thread count")
}
