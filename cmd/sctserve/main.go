// Command sctserve runs one exploration job across processes: a
// coordinator that shards the schedule space into leased units, and
// workers that execute them. A fully completed distributed run is
// bit-identical to the sequential in-process exploration for DFS/IPB/IDB
// and verdict-identical for DPOR; dead, hung or partitioned workers are
// survived by lease expiry and re-dispatch.
//
// Coordinator:
//
//	sctserve -bench CS.account_bad [-technique idb|ipb|dfs|dpor]
//	         [-limit 10000] [-seed 1] [-listen 127.0.0.1:0] [-addr-file f]
//	         [-shards 8] [-lease-ttl 2s] [-local-workers N] [-norace]
//	         [-checkpoint job.ckpt] [-resume job.ckpt] [-max-wall 30s] [-csv]
//
// Worker (any number, started before or after the coordinator):
//
//	sctserve -worker -connect http://127.0.0.1:PORT [-name w1]
//
// Watcher (progress lines on stderr while a job runs elsewhere):
//
//	sctserve -watch -connect http://127.0.0.1:PORT [-watch-interval 500ms]
//
// Baseline (the sequential run the distributed one must match):
//
//	sctserve -local -bench CS.account_bad -technique dfs -csv
//
// SIGINT/SIGTERM drains gracefully: workers park their in-flight
// frontiers and hand them back, the coordinator writes a resumable job
// checkpoint (also readable by `sctrun -resume`), and the exit-status
// contract is preserved: 0 clean (no bug), 1 bug found, 2 truncated
// without a bug, 3 usage or internal error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/dist"
	"sctbench/internal/explore"
	"sctbench/internal/race"
	"sctbench/internal/report"
)

// Exit statuses (also asserted by the CLI tests and the CI distributed
// smoke).
const (
	exitClean     = 0
	exitBug       = 1
	exitTruncated = 2
	exitError     = 3
)

func main() {
	interrupt, stop := notifyInterrupt()
	defer stop()
	os.Exit(run(os.Args[1:], interrupt, os.Stdout, os.Stderr))
}

// notifyInterrupt maps the first SIGINT/SIGTERM to closing the returned
// channel — the coordinator drains, workers park. A second signal kills
// the process the usual way.
func notifyInterrupt() (<-chan struct{}, func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	interrupt := make(chan struct{})
	var once sync.Once
	go func() {
		for range ch {
			once.Do(func() { close(interrupt) })
			signal.Stop(ch)
		}
	}()
	return interrupt, func() { signal.Stop(ch) }
}

// run is the testable entry point.
func run(args []string, interrupt <-chan struct{}, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sctserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	worker := fs.Bool("worker", false, "run as a worker instead of a coordinator")
	watch := fs.Bool("watch", false, "poll the coordinator's /v1/status and print progress lines to stderr (-connect required)")
	watchInterval := fs.Duration("watch-interval", 500*time.Millisecond, "poll interval for -watch")
	connect := fs.String("connect", "", "coordinator URL, e.g. http://127.0.0.1:4077 (worker and watch modes)")
	wname := fs.String("name", "", "worker name shown in coordinator status (default w-<pid>)")
	local := fs.Bool("local", false, "run the job sequentially in-process — the baseline a distributed run must match")
	name := fs.String("bench", "", "benchmark name (see sctrun -list)")
	tech := fs.String("technique", "idb", "dfs | ipb | idb | dpor")
	limit := fs.Int("limit", explore.DefaultLimit, "terminal-schedule limit")
	seed := fs.Uint64("seed", 1, "random seed")
	noRace := fs.Bool("norace", false, "skip the race-detection phase (every access visible)")
	listen := fs.String("listen", "127.0.0.1:0", "coordinator listen address")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file (port discovery with :0)")
	shards := fs.Int("shards", 8, "units per pass (failover granularity)")
	leaseTTL := fs.Duration("lease-ttl", 2*time.Second, "unit lease TTL; a silent worker's unit is re-dispatched after this")
	localWorkers := fs.Int("local-workers", 0, "also run N in-process workers over loopback")
	ckPath := fs.String("checkpoint", "", "write the resumable job checkpoint here (drain, and after every unit)")
	resumePath := fs.String("resume", "", "resume a job from this checkpoint file")
	maxWall := fs.Duration("max-wall", 0, "wall-clock budget for the job (0 = none)")
	csvOut := fs.Bool("csv", false, "print the verdict row as CSV on stdout")
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	if *watch {
		return runWatch(*connect, *watchInterval, interrupt, stderr)
	}
	if *worker {
		return runWorker(*connect, *wname, interrupt, stderr)
	}

	var deadline time.Time
	if *maxWall > 0 {
		deadline = time.Now().Add(*maxWall)
	}

	if *local {
		return runLocal(*name, *tech, *limit, *seed, *noRace, deadline, interrupt,
			*ckPath, *csvOut, stdout, stderr)
	}

	t, ok := parseTechnique(*tech)
	if !ok {
		fmt.Fprintf(stderr, "unknown technique %q (want dfs, ipb, idb or dpor)\n", *tech)
		return exitError
	}

	var c *dist.Coordinator
	var benchName, techName string
	if *resumePath != "" {
		ck, err := explore.LoadCheckpoint(*resumePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitError
		}
		b := bench.ByName(ck.Benchmark)
		if b == nil {
			fmt.Fprintf(stderr, "checkpoint benchmark %q is not registered\n", ck.Benchmark)
			return exitError
		}
		out := *ckPath
		if out == "" {
			out = *resumePath // a re-drained resume checkpoints over its input
		}
		c, err = dist.ResumeCoordinator(ck, dist.JobConfig{
			Bench: b, Deadline: deadline, Interrupt: interrupt,
			LeaseTTL: *leaseTTL, Shards: *shards, CheckpointPath: out,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitError
		}
		benchName, techName = ck.Benchmark, ck.Technique
		fmt.Fprintf(stderr, "resuming %s %s: %d schedules done\n", ck.Technique, ck.Benchmark, ck.Result.Schedules)
	} else {
		b := bench.ByName(*name)
		if b == nil {
			fmt.Fprintf(stderr, "unknown benchmark %q (use sctrun -list)\n", *name)
			return exitError
		}
		var racy []string
		if !*noRace {
			phase := race.RunPhase(race.PhaseConfig{
				Program: b.New(), Seed: *seed, MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
			})
			racy = phase.Racy
			fmt.Fprintf(stderr, "race phase: %d racy variable(s): %s\n", len(racy), strings.Join(racy, ", "))
		}
		var err error
		c, err = dist.NewCoordinator(dist.JobConfig{
			Bench: b, Technique: t, Limit: *limit, Seed: *seed,
			Racy: racy, NoRace: *noRace, Deadline: deadline, Interrupt: interrupt,
			LeaseTTL: *leaseTTL, Shards: *shards, CheckpointPath: *ckPath,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitError
		}
		benchName, techName = b.Name, t.String()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "listen:", err)
		return exitError
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(l.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(stderr, "addr-file:", err)
			_ = l.Close()
			return exitError
		}
	}
	fmt.Fprintf(stderr, "sctserve: coordinating %s %s on %s\n", techName, benchName, l.Addr())
	c.Serve(l)
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < *localWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := dist.RunWorker(dist.WorkerConfig{
				Addr: "http://" + c.Addr(), Name: fmt.Sprintf("local-%d", i),
				Interrupt: interrupt,
			})
			if err != nil {
				fmt.Fprintf(stderr, "local worker %d: %v\n", i, err)
			}
		}(i)
	}
	res, err := c.Wait()
	wg.Wait()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	return report1(benchName, techName, res, *ckPath, *csvOut, stdout, stderr)
}

func parseTechnique(s string) (explore.Technique, bool) {
	switch strings.ToLower(s) {
	case "dfs":
		return explore.DFS, true
	case "ipb":
		return explore.IPB, true
	case "idb":
		return explore.IDB, true
	case "dpor":
		return explore.DPOR, true
	}
	return 0, false
}

// runWorker is worker mode: connect, execute leased units until the job
// ends, exit clean.
func runWorker(connect, name string, interrupt <-chan struct{}, stderr io.Writer) int {
	if connect == "" {
		fmt.Fprintln(stderr, "-worker needs -connect http://HOST:PORT")
		return exitError
	}
	if name == "" {
		name = fmt.Sprintf("w-%d", os.Getpid())
	}
	if err := dist.RunWorker(dist.WorkerConfig{Addr: connect, Name: name, Interrupt: interrupt}); err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	fmt.Fprintf(stderr, "worker %s: done\n", name)
	return exitClean
}

// runLocal runs the job sequentially in one process — no server, no
// leases — producing the baseline artifact a distributed run of the same
// job must reproduce bit-identically (DFS/IPB/IDB, completed runs).
func runLocal(name, tech string, limit int, seed uint64, noRace bool,
	deadline time.Time, interrupt <-chan struct{}, ckPath string, csvOut bool,
	stdout, stderr io.Writer) int {
	t, ok := parseTechnique(tech)
	if !ok {
		fmt.Fprintf(stderr, "unknown technique %q (want dfs, ipb, idb or dpor)\n", tech)
		return exitError
	}
	b := bench.ByName(name)
	if b == nil {
		fmt.Fprintf(stderr, "unknown benchmark %q (use sctrun -list)\n", name)
		return exitError
	}
	var visible func(string) bool
	var racy []string
	if !noRace {
		phase := race.RunPhase(race.PhaseConfig{
			Program: b.New(), Seed: seed, MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
		})
		racy = phase.Racy
		visible = race.Promoted(racy)
		fmt.Fprintf(stderr, "race phase: %d racy variable(s): %s\n", len(racy), strings.Join(racy, ", "))
	}
	res := explore.Run(t, explore.Config{
		Program: b.New(), Visible: visible, BoundsCheck: b.BoundsCheck,
		MaxSteps: b.MaxSteps, Limit: limit, Seed: seed, Workers: 1,
		Deadline: deadline, Interrupt: interrupt, CheckpointPath: ckPath,
		Meta: explore.CheckpointMeta{Benchmark: b.Name, Racy: racy, NoRace: noRace},
	})
	return report1(b.Name, t.String(), res, ckPath, csvOut, stdout, stderr)
}

// report1 prints one job result and maps it to the exit-status contract.
func report1(benchName, tech string, res *explore.Result, ckPath string, csvOut bool,
	stdout, stderr io.Writer) int {
	if res.WorkerPanics > 0 {
		fmt.Fprintf(stderr, "warning: %d exploration worker(s) panicked (%s); "+
			"schedule counts are lower bounds and completeness is not claimed\n",
			res.WorkerPanics, res.WorkerPanicMsg)
	}
	truncated := res.Stopped == explore.StopDeadline || res.Stopped == explore.StopInterrupted
	if truncated {
		where := "no checkpoint configured (use -checkpoint)"
		if ckPath != "" {
			where = "checkpoint saved to " + ckPath
		}
		fmt.Fprintf(stderr, "job truncated (%s) after %d schedules; %s\n", res.Stopped, res.Schedules, where)
	}
	if res.BugFound {
		fmt.Fprintf(stderr, "%s: bug at bound %d after %d schedules (%d total, %d buggy): %v\n",
			tech, res.Bound, res.SchedulesToFirstBug, res.Schedules, res.BuggySchedules, res.Failure)
	} else {
		fmt.Fprintf(stderr, "%s: no bug within %d schedules (bound reached %d, complete=%v)\n",
			tech, res.Schedules, res.Bound, res.Complete)
	}
	if csvOut {
		fmt.Fprint(stdout, report.JobCSVHeader)
		fmt.Fprint(stdout, report.JobCSVRow(benchName, tech, res))
	}
	switch {
	case res.BugFound:
		return exitBug
	case truncated:
		return exitTruncated
	default:
		return exitClean
	}
}
