// Throughput benchmarks for the pooled execution substrate. The workload
// of the study is millions of short executions, so the numbers that matter
// are executions/sec and allocs/execution; `make bench-json` records them
// as BENCH_substrate.json.
package sctbench

import (
	"fmt"
	"runtime"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/vthread"
)

// BenchmarkExecutorThroughput contrasts the NewWorld-per-run baseline with
// a reused Executor on a CS-suite program under the deterministic
// scheduler: the pure substrate overhead of one execution, allocations
// included.
func BenchmarkExecutorThroughput(b *testing.B) {
	bm := bench.ByName("CS.account_bad")
	prog := bm.New()
	b.Run("NewWorldPerRun", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := vthread.NewWorld(vthread.Options{
				Chooser: vthread.RoundRobin(), BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps,
			}).Run(prog)
			if out.Threads == 0 {
				b.Fatal("no threads ran")
			}
		}
		reportExecRate(b, b.N)
	})
	b.Run("Executor", func(b *testing.B) {
		b.ReportAllocs()
		ex := vthread.NewExecutor(vthread.Options{
			Chooser: vthread.RoundRobin(), BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps,
		})
		defer ex.Close()
		b.ResetTimer()
		steps := 0
		for i := 0; i < b.N; i++ {
			out := ex.Run(prog)
			if out.Threads == 0 {
				b.Fatal("no threads ran")
			}
			steps += len(out.Trace)
		}
		reportExecRate(b, b.N)
		reportStepCost(b, steps)
	})
}

// BenchmarkStepOverhead isolates the per-step handoff cost of the
// substrate's step-dispatch paths on yield-loop programs whose only work
// is scheduling, reporting ns/step for each:
//
//   - same-thread: two runnable threads under an inline-run round-robin
//     chooser that is not a StepObserver — every step runs the chooser on
//     the current thread's goroutine and continues it (zero switches).
//   - forced: one runnable thread under the opted-in RoundRobin — every
//     step is granted without a Choose call (zero switches, no decision).
//   - cross-thread: two threads under a strict-alternation chooser —
//     every step is a direct thread-to-thread baton handoff (one switch).
//   - bounced: the same alternation with direct handoff disabled — every
//     grant routes through the exec goroutine, the two context switches
//     per step the central-loop protocol paid for all steps.
func BenchmarkStepOverhead(b *testing.B) {
	const yields = 64
	yielders := func(threads int) vthread.Program {
		return func(t0 *vthread.Thread) {
			bodies := make([]vthread.Program, threads)
			for i := range bodies {
				bodies[i] = func(tw *vthread.Thread) {
					for s := 0; s < yields; s++ {
						tw.Yield()
					}
				}
			}
			t0.SpawnAll(bodies...)
		}
	}
	// inlineRR mirrors RoundRobin without implementing StepObserver, so
	// the chooser runs at every point (isolating path (a) from (b)).
	inlineRR := vthread.ChooserFunc(func(ctx vthread.Context) vthread.ThreadID {
		if ctx.LastEnabled {
			return ctx.Last
		}
		return ctx.Enabled[0]
	})
	alternate := vthread.ChooserFunc(func(ctx vthread.Context) vthread.ThreadID {
		for _, t := range ctx.Enabled {
			if t != ctx.Last {
				return t
			}
		}
		return ctx.Enabled[0]
	})
	cases := []struct {
		name    string
		threads int
		chooser vthread.Chooser
		debug   vthread.Debug
	}{
		{"same-thread", 2, inlineRR, vthread.Debug{}},
		{"forced", 1, vthread.RoundRobin(), vthread.Debug{}},
		{"cross-thread", 2, alternate, vthread.Debug{}},
		{"bounced", 2, alternate, vthread.Debug{NoDirectHandoff: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			ex := vthread.NewExecutor(vthread.Options{Chooser: c.chooser, Debug: c.debug})
			defer ex.Close()
			prog := yielders(c.threads)
			b.ResetTimer()
			steps := 0
			for i := 0; i < b.N; i++ {
				out := ex.Run(prog)
				if out.Failure != nil {
					b.Fatalf("unexpected failure: %v", out.Failure)
				}
				steps += len(out.Trace)
			}
			reportStepCost(b, steps)
		})
	}
}

// BenchmarkSubstrateThroughputSequential measures whole-driver throughput
// (engine + substrate) on a sequential bounded search over the CS suite's
// reorder program: executions/sec with the schedule-space walk, cost
// accounting and witness handling included.
func BenchmarkSubstrateThroughputSequential(b *testing.B) {
	bm := bench.ByName("CS.reorder_4_bad")
	prog := bm.New()
	b.ReportAllocs()
	execs := 0
	for i := 0; i < b.N; i++ {
		r := explore.RunIterative(explore.Config{
			Program: prog, BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps, Limit: 500,
		}, explore.CostDelays)
		execs += r.Executions
	}
	reportExecRate(b, execs)
}

// BenchmarkSubstrateThroughputParallel is the same walk over the
// work-stealing pool with one Executor per worker.
func BenchmarkSubstrateThroughputParallel(b *testing.B) {
	bm := bench.ByName("CS.reorder_4_bad")
	prog := bm.New()
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			execs := 0
			for i := 0; i < b.N; i++ {
				r := explore.RunIterative(explore.Config{
					Program: prog, BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps,
					Limit: 500, Workers: workers,
				}, explore.CostDelays)
				execs += r.Executions
			}
			reportExecRate(b, execs)
		})
	}
}

// reportExecRate attaches the executions/sec custom metric.
func reportExecRate(b *testing.B, execs int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(execs)/s, "execs/s")
	}
}

// reportStepCost attaches the per-scheduling-step cost custom metric.
func reportStepCost(b *testing.B, steps int) {
	if steps > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(steps), "ns/step")
	}
}
