package bench

import (
	"strings"
	"testing"

	"sctbench/internal/explore"
	"sctbench/internal/race"
	"sctbench/internal/vthread"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 64 {
		t.Fatalf("registry has %d benchmarks, want 64 (52 SCTBench + 6 GoIdiom + 6 GoTime)", len(all))
	}
	core, goidiom, gotime := 0, 0, 0
	for i, b := range all {
		if b.ID != i {
			t.Errorf("position %d has id %d (%s): ids must be the Table 3 row numbers", i, b.ID, b.Name)
		}
		switch b.Suite {
		case "GoIdiom":
			goidiom++
			if b.ID < 52 {
				t.Errorf("%s has id %d: the GoIdiom family extends the registry past the paper's 52 rows", b.Name, b.ID)
			}
		case "GoTime":
			gotime++
			if b.ID < 58 {
				t.Errorf("%s has id %d: the GoTime family extends the registry past GoIdiom", b.Name, b.ID)
			}
		default:
			core++
			if b.ID >= 52 {
				t.Errorf("%s has id %d: SCTBench ids are the Table 3 row numbers 0-51", b.Name, b.ID)
			}
		}
		if b.New == nil {
			t.Errorf("%s has no program constructor", b.Name)
		}
		if b.Threads < 2 {
			t.Errorf("%s declares %d threads; a concurrency benchmark needs at least 2", b.Name, b.Threads)
		}
		if b.Desc == "" {
			t.Errorf("%s has no description", b.Name)
		}
	}
	if core != 52 || goidiom != 6 || gotime != 6 {
		t.Fatalf("registry split %d SCTBench + %d GoIdiom + %d GoTime, want 52 + 6 + 6", core, goidiom, gotime)
	}
}

func TestTable1SuiteCounts(t *testing.T) {
	rows := Table1()
	want := map[string]int{
		"CB": 3, "CHESS": 4, "CS": 29, "Inspect": 1,
		"Miscellaneous": 2, "PARSEC": 4, "RADBench": 6, "SPLASH-2": 3,
	}
	total := 0
	for _, r := range rows {
		if r.Used != want[r.Name] {
			t.Errorf("suite %s has %d benchmarks, want %d (Table 1)", r.Name, r.Used, want[r.Name])
		}
		total += r.Used
	}
	if total != 52 {
		t.Fatalf("total used %d, want 52", total)
	}
}

func TestLookups(t *testing.T) {
	if ByName("CS.account_bad") == nil {
		t.Error("ByName failed for a known benchmark")
	}
	if ByName("no.such.benchmark") != nil {
		t.Error("ByName returned a ghost")
	}
	if b := ByID(35); b == nil || b.Name != "chess.WSQ" {
		t.Errorf("ByID(35) = %v, want chess.WSQ", b)
	}
	if ByID(99) != nil {
		t.Error("ByID(99) returned a ghost")
	}
	if len(Suites()) != 10 {
		t.Errorf("Suites() = %v, want 10 entries (8 SCTBench + GoIdiom + GoTime)", Suites())
	}
	if ByName("goidiom.cancel_bad") == nil {
		t.Error("ByName failed for a GoIdiom benchmark")
	}
	if ByName("gotime.ticker_leak_bad") == nil {
		t.Error("ByName failed for a GoTime benchmark")
	}
}

// TestEveryProgramTerminatesUnderRoundRobin: the zero-delay schedule of
// every benchmark must terminate within the step budget (buggy or not) —
// no benchmark may spin forever, or exploration would be unbounded.
func TestEveryProgramTerminatesUnderRoundRobin(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			w := vthread.NewWorld(vthread.Options{
				Chooser:     vthread.RoundRobin(),
				MaxSteps:    b.MaxSteps,
				BoundsCheck: b.BoundsCheck,
			})
			out := w.Run(b.New())
			if out.StepLimitHit {
				t.Fatalf("%s did not terminate under round-robin", b.Name)
			}
		})
	}
}

// TestEveryProgramIsDeterministic: replaying a random schedule must
// reproduce the identical trace and outcome — the foundational SCT
// assumption (§2: scheduler is the only nondeterminism).
func TestEveryProgramIsDeterministic(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ref := vthread.NewWorld(vthread.Options{
				Chooser: vthread.NewRandom(11), MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
			}).Run(b.New())
			rep := vthread.NewReplay(ref.Trace)
			out := vthread.NewWorld(vthread.Options{
				Chooser: rep, MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
			}).Run(b.New())
			if rep.Failed() {
				t.Fatalf("replay diverged at step %d", rep.FailStep())
			}
			if !out.Trace.Equal(ref.Trace) {
				t.Fatal("replayed trace differs")
			}
			if (out.Failure == nil) != (ref.Failure == nil) {
				t.Fatalf("outcome differs: %v vs %v", out.Failure, ref.Failure)
			}
		})
	}
}

// TestEveryBugIsReachable: every benchmark's bug must be exposable by at
// least one technique. For the five benchmarks the paper reports as found
// by *no* technique within 10,000 schedules (reorder_10/20, twostage_100,
// safestack, radbench.bug1), reachability is by construction (the buggy
// schedule exists but is out of budget), so they are exempt here; for
// radbench.bug5 only the Maple algorithm finds it, exercised in the
// mapleidiom tests.
func TestEveryBugIsReachable(t *testing.T) {
	if testing.Short() {
		t.Skip("reachability sweep is minutes-long; run without -short")
	}
	exempt := map[string]bool{
		"CS.reorder_10_bad":   true,
		"CS.reorder_20_bad":   true,
		"CS.twostage_100_bad": true,
		"misc.safestack":      true,
		"radbench.bug1":       true,
		"radbench.bug5":       true,
	}
	for _, b := range All() {
		if exempt[b.Name] {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			phase := race.RunPhase(race.PhaseConfig{
				Program: b.New(), Seed: 9, MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
			})
			vis := race.Promoted(phase.Racy)
			for _, tech := range []explore.Technique{explore.IDB, explore.IPB, explore.Rand, explore.DFS} {
				r := explore.Run(tech, explore.Config{
					Program: b.New(), Visible: vis, BoundsCheck: b.BoundsCheck,
					MaxSteps: b.MaxSteps, Limit: 10000, Seed: 9,
				})
				if r.BugFound {
					if r.Failure.Kind != b.BugKind {
						t.Fatalf("%s found a %v bug, registry says %v: %v",
							tech, r.Failure.Kind, b.BugKind, r.Failure)
					}
					return
				}
			}
			t.Fatalf("no technique exposed the bug in %s", b.Name)
		})
	}
}

// TestBugKindsMatchFailureMessages is a light sanity check that deadlock
// benchmarks actually deadlock and crash benchmarks actually crash, on a
// random-search witness.
func TestBugKindsMatchFailureMessages(t *testing.T) {
	for _, name := range []string{"CS.deadlock01_bad", "CB.pbzip2-0.9.4"} {
		b := ByName(name)
		found := false
		for seed := uint64(0); seed < 300 && !found; seed++ {
			out := vthread.NewWorld(vthread.Options{
				Chooser: vthread.NewRandom(seed), MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
			}).Run(b.New())
			if out.Buggy() {
				found = true
				if out.Failure.Kind != b.BugKind {
					t.Errorf("%s: failure kind %v, want %v (%v)", name, out.Failure.Kind, b.BugKind, out.Failure)
				}
			}
		}
		if !found {
			t.Errorf("%s: no witness in 300 random runs", name)
		}
	}
}

// TestTrivialBenchmarksFailOnFirstSchedule pins the Table 2 "bug found
// with DB = 0" group: their round-robin schedule is already buggy.
func TestTrivialBenchmarksFailOnFirstSchedule(t *testing.T) {
	names := []string{
		"CS.arithmetic_prog_bad", "CS.din_phil2_sat", "CS.din_phil7_sat",
		"CS.fsbench_bad", "CS.lazy01_bad", "CS.phase01_bad",
		"CS.sync01_bad", "CS.sync02_bad", "radbench.bug3",
	}
	for _, name := range names {
		b := ByName(name)
		if b == nil {
			t.Fatalf("missing %s", name)
		}
		out := vthread.NewWorld(vthread.Options{
			Chooser: vthread.RoundRobin(), MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
		}).Run(b.New())
		if !out.Buggy() {
			t.Errorf("%s: round-robin schedule is not buggy, but this benchmark is in the DB=0 group", name)
		}
	}
}

// TestRoundRobinPassesOnBoundSensitiveBenchmarks pins the complement: the
// benchmarks whose bugs need at least one preemption/delay must pass on
// the zero-delay schedule.
func TestRoundRobinPassesOnBoundSensitiveBenchmarks(t *testing.T) {
	names := []string{
		"CS.account_bad", "CS.bluetooth_driver_bad", "CS.deadlock01_bad",
		"CS.reorder_3_bad", "CS.wronglock_bad", "chess.WSQ", "chess.IWSQ",
		"inspect.qsort_mt", "misc.safestack", "parsec.ferret",
		"parsec.streamcluster", "parsec.streamcluster3",
		"radbench.bug1", "radbench.bug2", "radbench.bug4",
		"splash2.barnes", "splash2.fft", "splash2.lu",
	}
	for _, name := range names {
		b := ByName(name)
		out := vthread.NewWorld(vthread.Options{
			Chooser: vthread.RoundRobin(), MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
		}).Run(b.New())
		if out.Buggy() {
			t.Errorf("%s: round-robin schedule is buggy (%v); its bug must need a bound > 0",
				name, out.Failure)
		}
	}
}

// TestBenchmarksHaveRaces verifies §4.2's finding at our scale: a majority
// of the benchmarks contain data races (detected over a few uncontrolled
// runs), which is why treating races as errors would trivialise the study.
func TestBenchmarksHaveRaces(t *testing.T) {
	racy := 0
	for _, b := range All() {
		phase := race.RunPhase(race.PhaseConfig{
			Program: b.New(), Runs: 3, Seed: 21, MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
		})
		if len(phase.Racy) > 0 {
			racy++
		}
	}
	if racy < 26 {
		t.Errorf("only %d of %d benchmarks show data races; the suite should be race-heavy (paper: 33 of 52)", racy, len(All()))
	}
}

func TestBenchmarkString(t *testing.T) {
	b := ByID(0)
	if !strings.Contains(b.String(), "CB.aget-bug2") {
		t.Errorf("String() = %q", b.String())
	}
}
