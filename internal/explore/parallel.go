package explore

// Parallel exploration driver. The schedule space of one program is a tree
// whose nodes are scheduling points and whose edges are CanonicalOrder
// choices; the sequential engines walk it depth first. This driver
// partitions that tree into prefix-pinned subtrees ("units") explored by a
// pool of workers, with work-stealing: whenever the pool starves, a running
// worker donates the untried sibling range of the shallowest open node on
// its stack as a new unit (the owner works at the tail of its stack, the
// donation is carved off at the head — the deque discipline of the
// work-stealing queue benchmarked in examples/wsq). Units are generic over
// the searcher interface, so the same pool drives the plain DFS/IPB/IDB
// engine and the DPOR engine (whose donations deep-copy backtrack, done
// and sleep state; see dporEngine.split).
//
// Determinism. Depth-first search visits terminal schedules in the
// lexicographic order of their branch keys (sched.CompareBranchKeys), and
// every DFS/IPB/IDB unit covers a contiguous lexicographic range, so
// concatenating per-unit results sorted by start key reproduces the
// sequential visit order exactly — no matter how the work-stealing
// happened to cut the tree. Schedule totals, per-bound NewSchedules,
// completeness, the first-bug selection and its witness are therefore
// bit-identical to Workers: 1 whenever the search runs to completion. When
// the schedule limit truncates the search, the counted totals are still
// exact (the budget is an atomic ticket counter), but which schedules fall
// inside the budget depends on worker timing, so BugFound/Witness may
// differ from a sequential truncated run; Executions is always the actual
// work performed, including cancelled speculative bounds.
//
// DPOR is the exception to exactness: its backtrack sets grow from races
// observed at runtime, so a donated unit and its donor may later discover
// the same reversal independently and both explore it. Parallel DPOR is
// sound — every Mazurkiewicz trace the sequential search covers is covered
// — and bit-identical to Workers: 1 whenever no work was stolen, but under
// stealing the schedule count may include duplicated equivalence classes.
// The bug verdict and completeness are preserved either way.
//
// Iterative bounding (IPB/IDB) additionally overlaps bound sweeps: while
// bound k drains, a lower-priority job speculatively explores bound k+1 in
// the same pool. If bound k finds the bug or completes the space, the
// speculative job is cancelled and its results are discarded; otherwise it
// is promoted and its partial progress is kept.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// searcher is the engine contract the worker pool drives. Both engine
// (DFS/IPB/IDB) and dporEngine implement it. A searcher is confined to
// one worker goroutine at a time; donation transfers ownership of the
// returned unit's engine to whichever worker takes it.
type searcher interface {
	// setExec points the engine at the executor of the worker currently
	// running it.
	setExec(ex *vthread.Executor)
	// runOnce executes the program once, replaying the stack prefix.
	runOnce() *vthread.Outcome
	// backtrack advances to the next branch, false when exhausted.
	backtrack() bool
	// counts reports whether out is a terminal schedule this search
	// counts (exact-bound for IPB/IDB, non-redundant for the pruning
	// engines).
	counts(out *vthread.Outcome) bool
	// split carves off a donated unit, or returns nil when every node is
	// closed (always, for a searcher that does not partition). The
	// donated state must be deep-copied: donor and donee run on
	// different workers.
	split() *unit
	// wasPruned reports that a bounded search skipped an over-bound
	// alternative (engine only; decides Complete for IPB/IDB).
	wasPruned() bool
	// prunedBranches is the number of enabled siblings retired unexplored
	// by partial-order reduction (pruning engines only; 0 otherwise).
	prunedBranches() int
	// execCount is the number of executions this engine performed.
	execCount() int
}

// searcher implementation for the DFS/IPB/IDB engine.

func (e *engine) setExec(ex *vthread.Executor) { e.exec = ex }
func (e *engine) wasPruned() bool              { return e.pruned }
func (e *engine) prunedBranches() int          { return 0 }
func (e *engine) execCount() int               { return e.executions }

// counts reports whether the execution is a terminal schedule this engine
// counts: every terminal one for DFS, exactly-at-bound ones for IPB/IDB.
func (e *engine) counts(out *vthread.Outcome) bool {
	if out.StepLimitHit {
		return false
	}
	switch e.model {
	case CostPreemptions:
		return out.PC == e.bound
	case CostDelays:
		return out.DC == e.bound
	default:
		return true
	}
}

// split carves the untried sibling range (idx, hi] off the shallowest open
// node of the engine's stack as a prefix-pinned unit, or returns nil when
// every node is closed. The donated unit is created in backtrack-first
// state so the ordinary backtracking path advances it into (and
// bound-prunes) its range.
func (e *engine) split() *unit {
	for d := 0; d < len(e.stack); d++ {
		nd := &e.stack[d]
		if nd.idx >= nd.hi {
			continue
		}
		key := make([]int, d+1)
		stack := make([]node, d+1)
		copy(stack, e.stack[:d+1])
		// Deep-copy the node buffers: the donor recycles its order/costs
		// slices through its free list on backtrack, so sharing them with
		// the donated engine (which runs on another worker) would be a
		// use-after-recycle race.
		for i := range stack {
			stack[i].order = append([]sched.ThreadID(nil), stack[i].order...)
			stack[i].costs = append([]int(nil), stack[i].costs...)
		}
		for i := 0; i < d; i++ {
			key[i] = stack[i].idx
			stack[i].hi = stack[i].idx // pin the prefix
		}
		key[d] = nd.idx + 1
		ne := newEngine(e.cfg, e.model, e.bound)
		ne.stack = stack
		nd.hi = nd.idx // the donor no longer owns the range
		return &unit{eng: ne, key: key}
	}
	return nil
}

// searcher implementation for the DPOR engine.

func (e *dporEngine) setExec(ex *vthread.Executor) { e.exec = ex }
func (e *dporEngine) wasPruned() bool              { return false }
func (e *dporEngine) prunedBranches() int          { return e.pruned }
func (e *dporEngine) execCount() int               { return e.executions }

// counts: aborted runs are detected redundancies, not terminal schedules.
func (e *dporEngine) counts(out *vthread.Outcome) bool {
	return !out.StepLimitHit && !out.Aborted
}

// searcher implementation for the sleep-set engine — used only by the
// shared sequential driver (RunSleepSetDFS never runs on the pool, so it
// never donates).

func (e *ssEngine) setExec(ex *vthread.Executor) { e.exec = ex }
func (e *ssEngine) wasPruned() bool              { return false }
func (e *ssEngine) prunedBranches() int          { return e.pruned }
func (e *ssEngine) execCount() int               { return e.executions }
func (e *ssEngine) split() *unit                 { return nil }

func (e *ssEngine) counts(out *vthread.Outcome) bool {
	return !out.StepLimitHit && !out.Aborted
}

// split donates every pending backtrack candidate of the shallowest node
// that has one, deep-copying the stack up to and including that node. The
// donee's prefix copies carry no pending work of their own (the donor
// keeps its candidates), but stay live: a race the donee discovers against
// its pinned prefix re-opens its local copy, so no reversal is ever lost —
// at worst donor and donee both explore it (see the package comment). The
// donor marks the donated candidates done: the donee will explore them
// fully, so for the donor's later sleep-set computations they count as
// explored siblings.
func (e *dporEngine) split() *unit {
	for d := 0; d < len(e.stack); d++ {
		nd := &e.stack[d]
		first := -1
		for k := range nd.order {
			if e.pendingAt(nd, k) {
				first = k
				break
			}
		}
		if first < 0 {
			continue
		}
		ne := newDPOREngine(e.cfg)
		ne.maxThreads = e.maxThreads
		ne.stack = make([]dporNode, d+1)
		for i := 0; i <= d; i++ {
			src := &e.stack[i]
			cp := dporNode{
				order:     append([]sched.ThreadID(nil), src.order...),
				infos:     append([]vthread.PendingInfo(nil), src.infos...),
				idx:       src.idx,
				done:      append([]bool(nil), src.done...),
				backtrack: make([]bool, len(src.order)),
				sleep:     make(map[sched.ThreadID]vthread.PendingInfo, len(src.sleep)),
				nthreads:  src.nthreads,
				selOf:     src.selOf,
			}
			for t, info := range src.sleep {
				cp.sleep[t] = info
			}
			// Locally, only already-explored choices and the current one
			// exist; the donor's other pending candidates stay its own.
			for k := range cp.backtrack {
				cp.backtrack[k] = cp.done[k]
			}
			cp.backtrack[cp.idx] = true
			if i == d {
				for k := range src.order {
					if e.pendingAt(src, k) {
						cp.backtrack[k] = true
					}
				}
				// The donor finishes its current choice itself.
				cp.done[cp.idx] = true
			}
			ne.stack[i] = cp
		}
		ne.borrowed = d + 1
		ne.analyzeFrom = d + 1
		for k := range nd.order {
			if e.pendingAt(nd, k) {
				nd.done[k] = true
			}
		}
		key := make([]int, d+1)
		for i := 0; i < d; i++ {
			key[i] = e.stack[i].idx
		}
		key[d] = first
		return &unit{eng: ne, key: key}
	}
	return nil
}

// pendingAt reports whether choice k of nd is donatable pending work: in
// the backtrack set, not explored, not asleep, and not the choice the
// donor is currently inside. Case nodes skip the sleep lookup: their order
// entries are case indices, which must never be matched against the
// thread-keyed sleep map.
func (e *dporEngine) pendingAt(nd *dporNode, k int) bool {
	if k == nd.idx || !nd.backtrack[k] || nd.done[k] {
		return false
	}
	if nd.selOf != vthread.NoThread {
		return true
	}
	_, asleep := nd.sleep[nd.order[k]]
	return !asleep
}

// unit is a prefix-pinned sub-search: an engine whose stack prefix is
// pinned and whose shallowest open node may be restricted to a sibling
// range (DFS) or a donated candidate set (DPOR). key is the branch key of
// the first position the unit covers; fresh units run immediately, donated
// units backtrack first (the uniform path that also handles bound-pruning
// of the donated range).
type unit struct {
	eng   searcher
	key   []int
	fresh bool
}

// runStats is the per-benchmark max-statistics fold of Table 3 (max
// enabled threads, max contested scheduling points, max thread count),
// shared by every accumulation site of the parallel driver.
type runStats struct {
	maxEnabled int
	schedPts   int
	threads    int
}

// observe folds one execution's statistics in.
func (s *runStats) observe(out *vthread.Outcome) {
	if out.MaxEnabled > s.maxEnabled {
		s.maxEnabled = out.MaxEnabled
	}
	if out.SchedPoints > s.schedPts {
		s.schedPts = out.SchedPoints
	}
	if out.Threads > s.threads {
		s.threads = out.Threads
	}
}

// fold merges another accumulator in.
func (s *runStats) fold(o runStats) {
	if o.maxEnabled > s.maxEnabled {
		s.maxEnabled = o.maxEnabled
	}
	if o.schedPts > s.schedPts {
		s.schedPts = o.schedPts
	}
	if o.threads > s.threads {
		s.threads = o.threads
	}
}

// foldInto merges the accumulator into a Result.
func (s runStats) foldInto(r *Result) {
	if s.maxEnabled > r.MaxEnabled {
		r.MaxEnabled = s.maxEnabled
	}
	if s.schedPts > r.MaxSchedPoints {
		r.MaxSchedPoints = s.schedPts
	}
	if s.threads > r.Threads {
		r.Threads = s.threads
	}
}

// unitResult is everything a finished unit contributes to the merge.
type unitResult struct {
	runStats
	key       []int
	schedules int   // terminal schedules counted by this unit
	buggyOffs []int // 1-based offsets (within this unit) of buggy schedules
	failure   *vthread.Failure
	witness   sched.Schedule
	pruned    bool
	branches  int // enabled siblings retired unexplored by POR
}

// job is one complete pass over the tree (one DFS, or one bound of an
// iterative search) being explored by the pool.
type job struct {
	cfg Config

	queue   []*unit // guarded by pool.mu; donors append at the tail, thieves take the head
	pending int     // guarded by pool.mu; queued + running units
	closed  bool    // guarded by pool.mu; done has been closed

	results  []*unitResult // guarded by resMu
	resMu    sync.Mutex
	stop     atomic.Bool
	limitHit atomic.Bool
	budget   atomic.Int64 // remaining counted-schedule tickets

	// execs counts every execution performed anywhere in the exploration,
	// steps their summed trace lengths and aborts the chooser-aborted ones
	// (the honest Result.Executions / TotalSteps / AbortedExecutions
	// metrics, speculation included). own counts this job's executions
	// alone and is what execLimit — the MaxExecutions budget left when the
	// job was created, tightened as earlier bounds commit — guards, so
	// speculative work never burns the active bound's execution budget.
	execs     *atomic.Int64
	steps     *atomic.Int64
	aborts    *atomic.Int64
	own       atomic.Int64
	execLimit atomic.Int64

	done chan struct{}
}

// pool runs worker goroutines over an ordered list of jobs; workers always
// prefer the earliest job with queued work, so a speculative bound only
// consumes cycles the active bound cannot use.
type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*job
	idle   int
	closed bool
	wg     sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// addJob registers a job seeded with the whole-tree root unit.
func (p *pool) addJob(j *job, root searcher) *job {
	p.mu.Lock()
	j.queue = append(j.queue, &unit{eng: root, fresh: true})
	j.pending = 1
	p.jobs = append(p.jobs, j)
	p.mu.Unlock()
	p.cond.Signal()
	return j
}

// removeJob drops a finished job from the scan list.
func (p *pool) removeJob(j *job) {
	p.mu.Lock()
	for i, x := range p.jobs {
		if x == j {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// stopJob cancels a job: pending queued units are dropped, running units
// observe j.stop and finish their current execution only.
func (p *pool) stopJob(j *job) {
	p.mu.Lock()
	p.stopJobLocked(j)
	p.mu.Unlock()
}

func (p *pool) stopJobLocked(j *job) {
	j.stop.Store(true)
	j.pending -= len(j.queue)
	j.queue = nil
	if j.pending == 0 && !j.closed {
		j.closed = true
		close(j.done)
	}
}

// close stops every job and joins the workers.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	for _, j := range p.jobs {
		p.stopJobLocked(j)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// worker owns one reusable Executor for its whole lifetime: every unit it
// picks up (whatever the job or bound) runs its executions on it, so
// thread goroutines and buffers are recycled across units, not just
// within one. All jobs of a pool share one Config, so the executor's
// visibility/step options fit every unit.
func (p *pool) worker() {
	defer p.wg.Done()
	var ex *vthread.Executor
	defer func() {
		if ex != nil {
			ex.Close()
		}
	}()
	for {
		j, u := p.take()
		if u == nil {
			return
		}
		if ex == nil {
			ex = newExecutor(j.cfg)
		}
		u.eng.setExec(ex)
		p.runUnit(j, u)
	}
}

// take steals the lexicographically smallest queued unit of the earliest
// job with work, or blocks. Lex-priority stealing keeps the workers
// clustered on the earliest open regions of the tree, so the frontier
// advances in approximately the sequential visit order — which makes a
// budget-truncated parallel search count (and find bugs in) nearly the
// same lexicographic window a sequential search would, instead of
// scattering the budget across distant subtrees.
func (p *pool) take() (*job, *unit) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, nil
		}
		for _, j := range p.jobs {
			if len(j.queue) > 0 {
				best := 0
				for i := 1; i < len(j.queue); i++ {
					if sched.CompareBranchKeys(j.queue[i].key, j.queue[best].key) < 0 {
						best = i
					}
				}
				u := j.queue[best]
				j.queue = append(j.queue[:best], j.queue[best+1:]...)
				return j, u
			}
		}
		p.idle++
		p.cond.Wait()
		p.idle--
	}
}

// finishUnit records a unit's result and signals job completion when it was
// the last one out.
func (p *pool) finishUnit(j *job, res *unitResult) {
	j.resMu.Lock()
	j.results = append(j.results, res)
	j.resMu.Unlock()
	p.mu.Lock()
	j.pending--
	if j.pending == 0 && !j.closed {
		j.closed = true
		close(j.done)
	}
	p.mu.Unlock()
}

// maybeDonate splits the engine's shallowest open sibling range into a new
// unit when the pool is starving and the job's queue is empty.
func (p *pool) maybeDonate(j *job, eng searcher) {
	p.mu.Lock()
	starving := p.idle > 0 && len(j.queue) == 0 && !j.stop.Load() && !p.closed
	p.mu.Unlock()
	if !starving {
		return
	}
	u := eng.split()
	if u == nil {
		return
	}
	p.mu.Lock()
	if j.stop.Load() || p.closed {
		// The donation raced a cancellation; the donor already gave the
		// range up, so the unit must still be explored — by nobody. That
		// is fine: a stopped job's results are discarded.
		p.mu.Unlock()
		return
	}
	j.queue = append(j.queue, u)
	j.pending++
	p.mu.Unlock()
	p.cond.Signal()
}

// runUnit explores one unit to exhaustion (or cancellation), donating work
// along the way.
func (p *pool) runUnit(j *job, u *unit) {
	res := &unitResult{key: u.key}
	eng := u.eng
	alive := u.fresh || eng.backtrack()
	for alive && !j.stop.Load() {
		out := eng.runOnce()
		j.execs.Add(1)
		j.steps.Add(int64(len(out.Trace)))
		if out.Aborted {
			j.aborts.Add(1)
		}
		res.observe(out)
		if eng.counts(out) {
			if j.budget.Add(-1) < 0 {
				j.limitHit.Store(true)
				p.stopJob(j)
				break
			}
			res.schedules++
			if out.Buggy() {
				res.buggyOffs = append(res.buggyOffs, res.schedules)
				if res.failure == nil {
					res.failure = out.Failure
					res.witness = out.Trace.Clone()
				}
			}
		}
		// Post-execution check with >=, matching the sequential driver: the
		// execution that exhausts the budget still runs (and counts), and a
		// space that completes exactly at the budget reports LimitHit, not
		// Complete, either way.
		if j.own.Add(1) >= j.execLimit.Load() {
			j.limitHit.Store(true)
			p.stopJob(j)
			break
		}
		p.maybeDonate(j, eng)
		alive = eng.backtrack()
	}
	res.pruned = eng.wasPruned()
	res.branches = eng.prunedBranches()
	p.finishUnit(j, res)
}

// passResult is the merged outcome of one job.
type passResult struct {
	runStats
	schedules      int
	buggy          int
	bugFound       bool
	firstBugOffset int // 1-based, within this pass
	failure        *vthread.Failure
	witness        sched.Schedule
	pruned         bool
	branches       int
	truncated      bool // the merge-time budget cut the walk short
}

// mergeJob concatenates a job's unit results in canonical order, applying
// the exact remaining schedule budget. On a fully enumerated pass this
// reproduces the sequential visit order (see the package comment).
func mergeJob(j *job, budget int) passResult {
	j.resMu.Lock()
	units := j.results
	j.resMu.Unlock()
	sort.Slice(units, func(a, b int) bool {
		return sched.CompareBranchKeys(units[a].key, units[b].key) < 0
	})
	var m passResult
	for _, u := range units {
		m.fold(u.runStats)
		m.pruned = m.pruned || u.pruned
		m.branches += u.branches
		take := u.schedules
		if m.schedules+take > budget {
			take = budget - m.schedules
			m.truncated = true
		}
		for _, off := range u.buggyOffs {
			if off > take {
				break
			}
			m.buggy++
			if !m.bugFound {
				m.bugFound = true
				m.firstBugOffset = m.schedules + off
				m.failure = u.failure
				m.witness = u.witness
			}
		}
		m.schedules += take
	}
	return m
}

// newCounters builds the shared execution/step/abort tallies one parallel
// driver's jobs all feed.
func newCounters() (execs, steps, aborts *atomic.Int64) {
	return new(atomic.Int64), new(atomic.Int64), new(atomic.Int64)
}

// runTreeParallel is the shared single-pass driver behind parallel DFS and
// DPOR: one job seeded with root, explored to completion or the schedule
// limit.
func runTreeParallel(cfg Config, r *Result, root searcher) *Result {
	p := newPool(cfg.Workers)
	defer p.close()
	execs, steps, aborts := newCounters()
	j := &job{cfg: cfg, execs: execs, steps: steps, aborts: aborts,
		done: make(chan struct{})}
	j.execLimit.Store(math.MaxInt64) // unbounded passes have no execution guard
	j.budget.Store(int64(cfg.Limit))
	p.addJob(j, root)
	<-j.done
	m := mergeJob(j, cfg.Limit)
	foldPass(r, &m, 0)
	r.Schedules = m.schedules
	if r.Schedules >= cfg.Limit || j.limitHit.Load() || m.truncated {
		r.LimitHit = true
	} else {
		r.Complete = true
	}
	r.Executions = int(execs.Load())
	r.TotalSteps = steps.Load()
	r.AbortedExecutions = int(aborts.Load())
	return r
}

// runDFSParallel is RunDFS with cfg.Workers > 1.
func runDFSParallel(cfg Config) *Result {
	cfg = cfg.withDefaults()
	return runTreeParallel(cfg, &Result{Technique: DFS}, newEngine(cfg, CostNone, 0))
}

// runDPORParallel is RunDPOR with cfg.Workers > 1; see the package comment
// for the exactness caveat under work-stealing.
func runDPORParallel(cfg Config) *Result {
	cfg = cfg.withDefaults()
	return runTreeParallel(cfg, &Result{Technique: DPOR}, newDPOREngine(cfg))
}

// runIterativeParallel is RunIterative with cfg.Workers > 1: each bound is
// one job, with the next bound running speculatively behind it.
func runIterativeParallel(cfg Config, model CostModel) *Result {
	cfg = cfg.withDefaults()
	tech := IPB
	if model == CostDelays {
		tech = IDB
	}
	r := &Result{Technique: tech}
	p := newPool(cfg.Workers)
	defer p.close()
	execs, steps, aborts := newCounters()

	committedExecs := int64(0)
	newJob := func(bound, budget int) *job {
		j := &job{cfg: cfg, execs: execs, steps: steps, aborts: aborts,
			done: make(chan struct{})}
		j.execLimit.Store(int64(cfg.MaxExecutions) - committedExecs)
		j.budget.Store(int64(budget))
		return p.addJob(j, newEngine(cfg, model, bound))
	}

	counted := 0
	active := newJob(0, cfg.Limit)
	var spec *job
	if cfg.MaxBound >= 1 {
		spec = newJob(1, cfg.Limit)
	}
	for bound := 0; ; bound++ {
		<-active.done
		p.removeJob(active)
		m := mergeJob(active, cfg.Limit-counted)
		r.Bound = bound
		r.NewSchedules = m.schedules
		foldPass(r, &m, counted)
		counted += m.schedules
		r.Schedules = counted
		if r.Schedules >= cfg.Limit || active.limitHit.Load() || m.truncated {
			r.LimitHit = true
			break
		}
		if !m.pruned {
			// Nothing was pruned anywhere: every schedule costs at most
			// bound, so the space is fully explored.
			r.Complete = true
			break
		}
		if r.BugFound {
			// The bound that exposed the bug has been fully enumerated;
			// stop, as in the paper's methodology (§5).
			break
		}
		if bound == cfg.MaxBound {
			break
		}
		ownExecs := active.own.Load()
		committedExecs += ownExecs
		active = spec
		// The promoted job's budgets are stale snapshots from its creation
		// (before the just-committed bound's consumption was known);
		// tighten them by exactly what that bound consumed.
		active.budget.Add(int64(-m.schedules))
		active.execLimit.Add(-ownExecs)
		if bound+2 <= cfg.MaxBound {
			spec = newJob(bound+2, cfg.Limit-counted)
		} else {
			spec = nil
		}
	}
	r.Executions = int(execs.Load())
	r.TotalSteps = steps.Load()
	r.AbortedExecutions = int(aborts.Load())
	return r
}

// foldPass folds one merged pass into the result; prior is the number of
// schedules counted by earlier (committed) passes.
func foldPass(r *Result, m *passResult, prior int) {
	m.runStats.foldInto(r)
	r.BuggySchedules += m.buggy
	r.BranchesPruned += m.branches
	if m.bugFound && !r.BugFound {
		r.BugFound = true
		r.Failure = m.failure
		r.Witness = m.witness
		r.SchedulesToFirstBug = prior + m.firstBugOffset
	}
}

// runRandParallel is RunRand with cfg.Workers > 1: the runs are independent
// and the per-run seed depends only on the run index, so an atomic index
// dispenser makes the parallel result — including the witness — identical
// to the sequential one. Workers capture the witness of the lowest-index
// buggy run as they go, so exactly Limit executions are performed, as in
// the sequential sweep.
func runRandParallel(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{Technique: Rand}
	n := cfg.Limit

	type rec struct {
		terminal, buggy bool
		steps           int
	}
	recs := make([]rec, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	stats := make([]runStats, cfg.Workers)
	var witMu sync.Mutex
	witIdx := -1
	var witness sched.Schedule
	var failure *vthread.Failure
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := newExecutor(cfg)
			defer ex.Close()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out := randRun(ex, cfg, i)
				stats[w].observe(out)
				recs[i] = rec{terminal: !out.StepLimitHit, buggy: out.Buggy(), steps: len(out.Trace)}
				if out.Buggy() {
					witMu.Lock()
					if witIdx < 0 || i < witIdx {
						witIdx = i
						witness = out.Trace.Clone()
						failure = out.Failure
					}
					witMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	for _, rc := range recs {
		r.TotalSteps += int64(rc.steps)
		if !rc.terminal {
			continue
		}
		r.Schedules++
		if rc.buggy {
			r.BuggySchedules++
			if !r.BugFound {
				r.BugFound = true
				r.SchedulesToFirstBug = r.Schedules
				r.Failure = failure
				r.Witness = witness
			}
		}
	}
	for _, s := range stats {
		s.foldInto(r)
	}
	r.Executions = n
	r.LimitHit = true
	return r
}

// randRun executes run i of a Rand sweep on the caller's executor. It is
// the single definition of the per-run seed formula, used by both the
// sequential and the parallel sweep, so the two execute identical
// schedules by construction.
func randRun(ex *vthread.Executor, cfg Config, i int) *vthread.Outcome {
	return ex.RunWith(vthread.NewRandom(cfg.Seed+uint64(i)*0x9e3779b9), nil, cfg.Program)
}
