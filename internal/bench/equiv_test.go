package bench

// Registry-level equivalence suite: every benchmark that migrated to the
// compiled form carries its original closure program in the Ref field, and
// this test is the reason why. For each such pair it executes New() on the
// flat single-goroutine engine and Ref() on the goroutine reference engine
// under identical choosers — deterministic round-robin plus a spread of
// random seeds — and requires the two executions to be indistinguishable:
// same trace, same outcome counters, same failure (or clean exit), and the
// same event stream key by key. This is the op-for-op translation contract
// of internal/vthread's doc.go enforced over the whole registry, so a
// compiled benchmark that drifts from its closure twin by even one visible
// operation fails here before it can skew any Table 3 number.

import (
	"fmt"
	"testing"

	"sctbench/internal/vthread"
)

// equivSeeds is the random-chooser spread; seed 0 means round-robin.
var equivSeeds = []uint64{0, 1, 2, 3, 5, 8, 13, 21}

func chooserFor(seed uint64) vthread.Chooser {
	if seed == 0 {
		return vthread.RoundRobin()
	}
	return vthread.NewRandom(seed)
}

// runLogged executes program once on a fresh Executor and returns the
// outcome (trace cloned out of the recycled buffer) and the event log.
func runLogged(b *Benchmark, program vthread.Runnable, seed uint64, noFlat bool) (*vthread.Outcome, string, vthread.StepStats) {
	log := vthread.NewTraceLogger()
	e := vthread.NewExecutor(vthread.Options{
		MaxSteps:    b.MaxSteps,
		BoundsCheck: b.BoundsCheck,
		Debug:       vthread.Debug{NoFlatEngine: noFlat},
	})
	defer e.Close()
	out := e.RunWith(chooserFor(seed), log, program)
	cp := *out
	cp.Trace = out.Trace.Clone()
	return &cp, log.String(), e.StepStats()
}

func sameFailure(a, b *vthread.Failure) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Kind == b.Kind && a.Thread == b.Thread && a.Message == b.Message
}

func diffOutcome(t *testing.T, tag string, flat, ref *vthread.Outcome, flatLog, refLog string) {
	t.Helper()
	if !flat.Trace.Equal(ref.Trace) {
		t.Errorf("%s: traces differ\nflat %v\nref  %v", tag, flat.Trace, ref.Trace)
	}
	if !sameFailure(flat.Failure, ref.Failure) {
		t.Errorf("%s: failures differ\nflat %v\nref  %v", tag, flat.Failure, ref.Failure)
	}
	if flat.PC != ref.PC || flat.DC != ref.DC ||
		flat.SchedPoints != ref.SchedPoints || flat.SelectPoints != ref.SelectPoints ||
		flat.TimerPoints != ref.TimerPoints || flat.MaxEnabled != ref.MaxEnabled ||
		flat.Threads != ref.Threads || flat.StepLimitHit != ref.StepLimitHit {
		t.Errorf("%s: outcome counters differ\nflat %+v\nref  %+v", tag, flat, ref)
	}
	if flatLog != refLog {
		t.Errorf("%s: event streams differ\nflat:\n%s\nref:\n%s", tag, flatLog, refLog)
	}
}

// TestCompiledMatchesReference is the pairwise oracle: flat-engine New()
// versus goroutine-engine Ref() under every chooser in the spread.
func TestCompiledMatchesReference(t *testing.T) {
	paired := 0
	for _, b := range All() {
		if b.Ref == nil {
			continue
		}
		paired++
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if _, compiled := b.New().(*vthread.CompiledProgram); !compiled {
				t.Fatalf("%s declares a Ref twin but New() is not a *CompiledProgram", b.Name)
			}
			for _, seed := range equivSeeds {
				flat, flatLog, fstats := runLogged(b, b.New(), seed, false)
				ref, refLog, _ := runLogged(b, vthread.Runnable(b.Ref()), seed, false)
				if fstats.FlatSteps == 0 {
					t.Fatalf("seed %d: compiled program took no flat steps — flat engine not engaged", seed)
				}
				diffOutcome(t, tagFor(seed), flat, ref, flatLog, refLog)
			}
		})
	}
	// misc.safestack is the one deliberate closure-only entry left: the
	// live exerciser of the goroutine reference engine and the automatic
	// fallback path. Everything else must be paired.
	if want := len(All()) - 1; paired != want {
		t.Fatalf("%d benchmarks carry a Ref twin, want %d (all but the closure-form misc.safestack)", paired, want)
	}
}

// TestCompiledBridgeMatchesFlat runs the same compiled program with and
// without Debug.NoFlatEngine: the blocking bridge onto the goroutine
// engine must reproduce the flat engine's execution exactly. Exercised on
// a representative slice (one per suite) to keep the run short — the
// per-instruction semantics it checks do not vary per benchmark.
func TestCompiledBridgeMatchesFlat(t *testing.T) {
	names := []string{
		"CS.twostage_bad", "chess.WSQ", "parsec.streamcluster",
		"radbench.bug6", "splash2.fft", "goidiom.workerpool_bad",
		"gotime.timeout_vs_result_bad",
	}
	for _, name := range names {
		b := ByName(name)
		if b == nil || b.Ref == nil {
			t.Fatalf("%s: not in registry or not migrated", name)
		}
		t.Run(name, func(t *testing.T) {
			for _, seed := range equivSeeds[:4] {
				flat, flatLog, _ := runLogged(b, b.New(), seed, false)
				bridged, bridgedLog, bstats := runLogged(b, b.New(), seed, true)
				if bstats.FlatSteps != 0 || bstats.FlatFallbacks == 0 {
					t.Fatalf("seed %d: NoFlatEngine run still used the flat engine (stats %+v)", seed, bstats)
				}
				diffOutcome(t, tagFor(seed), flat, bridged, flatLog, bridgedLog)
			}
		})
	}
}

// TestCompiledReplayRoundTrip: a witness trace recorded on the flat engine
// replays on the reference engine against the closure twin, and vice
// versa. This is what makes engine choice invisible to Replay users.
func TestCompiledReplayRoundTrip(t *testing.T) {
	for _, name := range []string{"CS.reorder_4_bad", "goidiom.pipeline_bad", "radbench.bug2"} {
		b := ByName(name)
		if b == nil || b.Ref == nil {
			t.Fatalf("%s: not in registry or not migrated", name)
		}
		t.Run(name, func(t *testing.T) {
			flat, _, _ := runLogged(b, b.New(), 7, false)
			rep := vthread.NewReplay(flat.Trace)
			out := vthread.NewWorld(vthread.Options{
				Chooser: rep, MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
			}).Run(b.Ref())
			if rep.Failed() {
				t.Fatalf("flat witness diverged on the reference engine at step %d", rep.FailStep())
			}
			if !out.Trace.Equal(flat.Trace) || !sameFailure(out.Failure, flat.Failure) {
				t.Fatalf("flat witness did not reproduce on the reference engine:\nflat %v %v\nref  %v %v",
					flat.Trace, flat.Failure, out.Trace, out.Failure)
			}
		})
	}
}

func tagFor(seed uint64) string {
	if seed == 0 {
		return "round-robin"
	}
	return fmt.Sprintf("seed %d", seed)
}
