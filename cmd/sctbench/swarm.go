package main

// Swarm mode: `sctbench -swarm` sweeps technique x bound x seed over the
// selected benchmarks via study.RunSwarm and emits the consolidated CSV.
// With -corpus, every witness the sweep finds lands in the corpus, so a
// later run (swarm or plain) replays it instead of searching cold.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/corpus"
	"sctbench/internal/explore"
	"sctbench/internal/report"
	"sctbench/internal/study"
	"sctbench/internal/vthread"
)

// swarmOptions carries the parsed flag state into runSwarm.
type swarmOptions struct {
	seeds, bounds string
	csvPath       string
	limit         int
	par, workers  int
	withDPOR      bool
	maxWall       time.Duration
	verbose       bool
	debug         vthread.Debug
	store         *corpus.Store
	interrupt     <-chan struct{}
}

func parseUint64List(s string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad list entry %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func runSwarm(benches []*bench.Benchmark, opt swarmOptions, stdout, stderr io.Writer) int {
	seeds, err := parseUint64List(opt.seeds)
	if err != nil {
		fmt.Fprintln(stderr, "-swarm-seeds:", err)
		return exitError
	}
	bounds, err := parseIntList(opt.bounds)
	if err != nil {
		fmt.Fprintln(stderr, "-swarm-bounds:", err)
		return exitError
	}

	cfg := study.SwarmConfig{
		Bounds:      bounds,
		Seeds:       seeds,
		Limit:       opt.limit,
		Parallelism: opt.par,
		Workers:     opt.workers,
		Debug:       opt.debug,
		Interrupt:   opt.interrupt,
		Corpus:      opt.store,
	}
	if opt.withDPOR {
		cfg.Techniques = []explore.Technique{explore.IPB, explore.IDB,
			explore.DFS, explore.Rand, explore.DPOR}
	}
	if opt.maxWall > 0 {
		cfg.Deadline = time.Now().Add(opt.maxWall)
	}
	if opt.verbose {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	cells := study.RunSwarm(benches, cfg)
	elapsed := time.Since(start)

	csv := report.SwarmCSV(cells)
	if opt.csvPath != "" {
		if err := os.WriteFile(opt.csvPath, []byte(csv), 0o644); err != nil {
			fmt.Fprintln(stderr, "swarmcsv:", err)
			return exitError
		}
	} else {
		fmt.Fprint(stdout, csv)
	}

	bugs, hits, skipped := 0, 0, 0
	for _, c := range cells {
		switch {
		case c.Result == nil:
			skipped++
		case c.Result.BugFound:
			bugs++
			if c.Result.CorpusHit {
				hits++
			}
		}
	}
	fmt.Fprintf(stderr, "swarm: %d cells (%d benchmarks), %d buggy (%d corpus hits), %d skipped, %s\n",
		len(cells), len(benches), bugs, hits, skipped, elapsed.Round(time.Millisecond))

	if skipped > 0 {
		return exitTruncated
	}
	if bugs > 0 {
		return exitBug
	}
	return exitClean
}
