package main

// In-process CLI tests: the exit-status contract, the distributed ==
// sequential CSV identity, and the drain → resume cycle, as promised in
// the README's sctserve quickstart.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, interrupt <-chan struct{}, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, interrupt, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-worker"}, // no -connect
		{"-bench", "no.such.benchmark"},
		{"-bench", "CS.account_bad", "-technique", "rand"}, // not distributable
		{"-local", "-bench", "CS.account_bad", "-technique", "quantum"},
		{"-no-such-flag"},
	} {
		if code, _, _ := runCLI(t, nil, args...); code != exitError {
			t.Errorf("%v exited %d, want %d", args, code, exitError)
		}
	}
}

// TestDistributedMatchesLocal: the README's core claim at CLI level — a
// coordinator plus two workers produces exactly the CSV row the
// sequential in-process run produces, and the same exit status.
func TestDistributedMatchesLocal(t *testing.T) {
	args := []string{"-bench", "CS.account_bad", "-technique", "dfs",
		"-limit", "20000", "-norace", "-csv"}
	baseCode, baseCSV, _ := runCLI(t, nil, append([]string{"-local"}, args...)...)
	if baseCode != exitBug {
		t.Fatalf("local baseline exited %d, want %d", baseCode, exitBug)
	}

	addrFile := filepath.Join(t.TempDir(), "addr")
	distArgs := append([]string{"-local-workers", "2", "-listen", "127.0.0.1:0",
		"-addr-file", addrFile, "-lease-ttl", "500ms"}, args...)
	code, csv, errOut := runCLI(t, nil, distArgs...)
	if code != baseCode {
		t.Fatalf("distributed exited %d, want %d\n%s", code, baseCode, errOut)
	}
	if csv != baseCSV {
		t.Fatalf("distributed CSV diverged from sequential:\n got: %s\nwant: %s", csv, baseCSV)
	}
	addr, err := os.ReadFile(addrFile)
	if err != nil || !strings.HasPrefix(string(addr), "127.0.0.1:") {
		t.Errorf("addr-file = %q (%v), want a bound 127.0.0.1 address", addr, err)
	}
}

// TestDrainAndResume: an interrupted job exits with the truncation
// status and a resumable checkpoint; resuming it distributed finishes
// with the exact sequential CSV row.
func TestDrainAndResume(t *testing.T) {
	args := []string{"-bench", "CS.account_bad", "-technique", "dfs",
		"-limit", "20000", "-norace", "-csv"}
	baseCode, baseCSV, _ := runCLI(t, nil, append([]string{"-local"}, args...)...)
	if baseCode != exitBug {
		t.Fatalf("local baseline exited %d, want %d", baseCode, exitBug)
	}

	ck := filepath.Join(t.TempDir(), "job.ckpt")
	interrupt := make(chan struct{})
	close(interrupt) // drain immediately: nothing but the seed run happens
	code, _, errOut := runCLI(t, interrupt,
		append([]string{"-local-workers", "1", "-checkpoint", ck, "-lease-ttl", "200ms"}, args...)...)
	if code != exitTruncated {
		t.Fatalf("drained run exited %d, want %d\n%s", code, exitTruncated, errOut)
	}
	if !strings.Contains(errOut, "job truncated") || !strings.Contains(errOut, ck) {
		t.Fatalf("truncation notice missing:\n%s", errOut)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	code, csv, errOut := runCLI(t, nil,
		"-resume", ck, "-local-workers", "2", "-lease-ttl", "500ms", "-csv")
	if code != exitBug {
		t.Fatalf("resumed run exited %d, want %d\n%s", code, exitBug, errOut)
	}
	if csv != baseCSV {
		t.Fatalf("resumed CSV diverged from sequential:\n got: %s\nwant: %s", csv, baseCSV)
	}
}
