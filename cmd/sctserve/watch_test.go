package main

// CLI tests for watch mode: the progress-line shape, change-only
// printing, the clean exit when the coordinator goes away, and flag
// validation.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"sctbench/internal/dist"
)

func TestWatchPrintsProgressAndExitsWhenJobEnds(t *testing.T) {
	// A canned coordinator: two distinct snapshots, a repeat of the
	// second, then the server "shuts down" (the job ended).
	snapshots := []dist.StatusReply{
		{Phase: "bound", Bound: 2, UnitsDone: 1, UnitsTotal: 8, Leases: 2, Schedules: 120, Workers: 2},
		{Phase: "bound", Bound: 3, UnitsDone: 5, UnitsTotal: 8, Leases: 1, Schedules: 900, Workers: 2},
		{Phase: "bound", Bound: 3, UnitsDone: 5, UnitsTotal: 8, Leases: 1, Schedules: 900, Workers: 2},
	}
	var mu sync.Mutex
	served := 0
	var srv *httptest.Server
	srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/status" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		i := served
		served++
		mu.Unlock()
		if i >= len(snapshots) {
			go srv.CloseClientConnections()
			srv.Listener.Close()
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(snapshots[i])
	}))
	defer srv.Close()

	code, _, errOut := runCLI(t, nil, "-watch", "-connect", srv.URL, "-watch-interval", "5ms")
	if code != exitClean {
		t.Fatalf("watch exited %d, want %d\n%s", code, exitClean, errOut)
	}
	var lines []string
	for _, l := range strings.Split(strings.TrimRight(errOut, "\n"), "\n") {
		if strings.HasPrefix(l, "watch:") {
			lines = append(lines, l)
		}
	}
	// Two distinct snapshots (the repeat is deduped) plus the job-over line.
	if len(lines) != 3 {
		t.Fatalf("got %d watch lines, want 3:\n%s", len(lines), errOut)
	}
	shape := regexp.MustCompile(`^watch: phase=\S+ bound=\d+ units=\d+/\d+ leases=\d+ schedules=\d+ workers=\d+$`)
	for _, l := range lines[:2] {
		if !shape.MatchString(l) {
			t.Errorf("progress line %q does not match the documented shape", l)
		}
	}
	if want := "watch: phase=bound bound=2 units=1/8 leases=2 schedules=120 workers=2"; lines[0] != want {
		t.Errorf("first line = %q, want %q", lines[0], want)
	}
	if lines[2] != "watch: coordinator gone, job over" {
		t.Errorf("final line = %q, want the job-over notice", lines[2])
	}
}

func TestWatchNeedsConnect(t *testing.T) {
	if code, _, _ := runCLI(t, nil, "-watch"); code != exitError {
		t.Errorf("-watch without -connect exited %d, want %d", code, exitError)
	}
}

func TestWatchUnreachableCoordinatorIsAnError(t *testing.T) {
	code, _, errOut := runCLI(t, nil, "-watch", "-connect", "http://127.0.0.1:1",
		"-watch-interval", "1ms")
	if code != exitError {
		t.Fatalf("watch on a dead address exited %d, want %d\n%s", code, exitError, errOut)
	}
	if !strings.Contains(errOut, "cannot reach coordinator") {
		t.Errorf("missing unreachable notice:\n%s", errOut)
	}
}
