package explore

import (
	"testing"
	"testing/quick"

	"sctbench/internal/vthread"
)

// independentWorkers: k threads each touching only private state — every
// interleaving is equivalent, so sleep sets should collapse the whole
// space to a single schedule.
func independentWorkers(k, steps int) vthread.Program {
	return func(t0 *vthread.Thread) {
		bodies := make([]vthread.Program, k)
		for i := range bodies {
			i := i
			bodies[i] = func(tw *vthread.Thread) {
				v := tw.NewVar("private"+string(rune('a'+i)), 0)
				for s := 0; s < steps; s++ {
					v.Add(tw, 1)
				}
			}
		}
		t0.SpawnAll(bodies...)
	}
}

func TestSleepSetCollapsesIndependentThreads(t *testing.T) {
	dfs := RunDFS(Config{Program: independentWorkers(3, 2), Limit: 50000})
	ss := RunSleepSetDFS(Config{Program: independentWorkers(3, 2), Limit: 50000})
	if !dfs.Complete || !ss.Complete {
		t.Fatalf("incomplete: dfs=%v ss=%v", dfs.Complete, ss.Complete)
	}
	if ss.Schedules != 1 {
		t.Errorf("sleep sets explored %d schedules of fully independent threads, want 1 (DFS: %d)",
			ss.Schedules, dfs.Schedules)
	}
	if dfs.Schedules <= ss.Schedules {
		t.Errorf("no reduction: DFS %d vs sleep-set %d", dfs.Schedules, ss.Schedules)
	}
}

func TestSleepSetPreservesBugFinding(t *testing.T) {
	// Figure 1's bug must still be found, in no more schedules than DFS.
	dfs := RunDFS(Config{Program: figure1()})
	ss := RunSleepSetDFS(Config{Program: figure1()})
	if !ss.BugFound {
		t.Fatal("sleep-set DFS missed the Figure 1 bug")
	}
	if !ss.Complete {
		t.Fatal("sleep-set DFS did not exhaust the reduced space")
	}
	if ss.Schedules > dfs.Schedules {
		t.Errorf("sleep sets explored more than DFS: %d > %d", ss.Schedules, dfs.Schedules)
	}
}

func TestSleepSetFindsDeadlocks(t *testing.T) {
	program := func() vthread.Program {
		return func(t0 *vthread.Thread) {
			a := t0.NewMutex("a")
			b := t0.NewMutex("b")
			x := t0.Spawn(func(tw *vthread.Thread) {
				a.Lock(tw)
				b.Lock(tw)
				b.Unlock(tw)
				a.Unlock(tw)
			})
			y := t0.Spawn(func(tw *vthread.Thread) {
				b.Lock(tw)
				a.Lock(tw)
				a.Unlock(tw)
				b.Unlock(tw)
			})
			t0.Join(x)
			t0.Join(y)
		}
	}
	dfs := RunDFS(Config{Program: program()})
	ss := RunSleepSetDFS(Config{Program: program()})
	if !dfs.BugFound || !ss.BugFound {
		t.Fatalf("deadlock missed: dfs=%v ss=%v", dfs.BugFound, ss.BugFound)
	}
	if dfs.Failure.Kind != vthread.FailDeadlock || ss.Failure.Kind != vthread.FailDeadlock {
		t.Fatal("wrong failure kind")
	}
}

// Property: on random small programs, sleep-set DFS explores a subset of
// the schedule count, finds a bug iff DFS does, and remains complete when
// DFS is.
func TestPropertySleepSetSoundAndReducing(t *testing.T) {
	f := func(shape uint32) bool {
		dfs := RunDFS(Config{Program: genProgram(shape), Limit: 20000})
		if !dfs.Complete {
			return true
		}
		ss := RunSleepSetDFS(Config{Program: genProgram(shape), Limit: 20000})
		if !ss.Complete {
			t.Logf("shape %d: sleep-set incomplete where DFS completed", shape)
			return false
		}
		if ss.Schedules > dfs.Schedules {
			t.Logf("shape %d: sleep-set %d > DFS %d", shape, ss.Schedules, dfs.Schedules)
			return false
		}
		if ss.BugFound != dfs.BugFound {
			t.Logf("shape %d: bug disagreement ss=%v dfs=%v", shape, ss.BugFound, dfs.BugFound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingInfoIndependence(t *testing.T) {
	a := vthread.PendingInfo{Objects: vthread.NewFootprint("var/x")}
	b := vthread.PendingInfo{Objects: vthread.NewFootprint("var/x")}
	if a.Independent(b) {
		t.Error("write/write on the same object reported independent")
	}
	ra := vthread.PendingInfo{Objects: vthread.NewFootprint("var/x"), ReadOnly: true}
	rb := vthread.PendingInfo{Objects: vthread.NewFootprint("var/x"), ReadOnly: true}
	if !ra.Independent(rb) {
		t.Error("read/read on the same object reported dependent")
	}
	if ra.Independent(b) {
		t.Error("read/write on the same object reported independent")
	}
	c := vthread.PendingInfo{Objects: vthread.NewFootprint("var/y")}
	if !a.Independent(c) {
		t.Error("disjoint objects reported dependent")
	}
	none := vthread.PendingInfo{}
	if !none.Independent(a) || !a.Independent(none) {
		t.Error("object-free op reported dependent")
	}
}
