package bench

// Builder-DSL helpers shared by the compiled suite files. Every compiled
// benchmark must match its closure twin (the Ref field) visible-op for
// visible-op, so these helpers wrap only invisible constructs: counted
// loops whose counter lives in a register, handle joins, and the
// condition/operand closures Go's comparison and arithmetic expressions
// compile to.

import "sctbench/internal/vthread"

// loopN emits a counted loop running body n times. The counter is a
// register, so the loop overhead is invisible — exactly a plain Go
// `for i := 0; i < n; i++`.
func loopN(c *vthread.Code, n int, body func()) {
	i := c.Let(0)
	c.While(lt(i, n), func() {
		body()
		c.Set(i, plus(i, 1))
	})
}

// joinRegs joins spawned-thread handles in creation order (the compiled
// joinAll).
func joinRegs(c *vthread.Code, hs []vthread.OReg) {
	for _, h := range hs {
		c.Join(h)
	}
}

func eq(r vthread.Reg, v int) func(*vthread.Thread) bool {
	return func(t *vthread.Thread) bool { return t.Reg(r) == v }
}

func ne(r vthread.Reg, v int) func(*vthread.Thread) bool {
	return func(t *vthread.Thread) bool { return t.Reg(r) != v }
}

func lt(r vthread.Reg, v int) func(*vthread.Thread) bool {
	return func(t *vthread.Thread) bool { return t.Reg(r) < v }
}

func gt(r vthread.Reg, v int) func(*vthread.Thread) bool {
	return func(t *vthread.Thread) bool { return t.Reg(r) > v }
}

func ge(r vthread.Reg, v int) func(*vthread.Thread) bool {
	return func(t *vthread.Thread) bool { return t.Reg(r) >= v }
}

func eqr(a, b vthread.Reg) func(*vthread.Thread) bool {
	return func(t *vthread.Thread) bool { return t.Reg(a) == t.Reg(b) }
}

func ltr(a, b vthread.Reg) func(*vthread.Thread) bool {
	return func(t *vthread.Thread) bool { return t.Reg(a) < t.Reg(b) }
}

func gtr(a, b vthread.Reg) func(*vthread.Thread) bool {
	return func(t *vthread.Thread) bool { return t.Reg(a) > t.Reg(b) }
}

func plus(r vthread.Reg, d int) func(*vthread.Thread) int {
	return func(t *vthread.Thread) int { return t.Reg(r) + d }
}

func addr(a, b vthread.Reg) func(*vthread.Thread) int {
	return func(t *vthread.Thread) int { return t.Reg(a) + t.Reg(b) }
}
