// Package sctbench is a systematic concurrency testing (SCT) library for
// Go, reproducing "Concurrency Testing Using Schedule Bounding: an
// Empirical Study" (Thomson, Donaldson, Betts — PPoPP 2014).
//
// Programs under test are written against an explicit virtual-threading
// API (Thread, Mutex, Cond, Sem, Barrier, IntVar, Atomic, Array). The
// library then explores thread schedules systematically — unbounded
// depth-first search, iterative preemption bounding, iterative delay
// bounding — or randomly, reports the first buggy schedule as a replayable
// witness, and implements the full experimental pipeline of the paper
// (dynamic race detection to choose visible operations, then bounded
// exploration with schedule-limit accounting).
//
// # Quickstart
//
//	prog := func(t *sctbench.Thread) {
//		v := t.NewVar("counter", 0)
//		inc := func(w *sctbench.Thread) { v.Add(w, 1) }
//		a, b := t.Spawn(inc), t.Spawn(inc)
//		t.Join(a)
//		t.Join(b)
//		t.Assert(v.Load(t) == 2, "lost update: %d", v.Load(t))
//	}
//	res := sctbench.Explore(sctbench.IDB, sctbench.Config{Program: prog})
//	if res.BugFound {
//		fmt.Println(res.Failure, res.Witness)
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every table and figure.
package sctbench

import (
	"sctbench/internal/explore"
	"sctbench/internal/race"
	"sctbench/internal/sched"
	"sctbench/internal/simplify"
	"sctbench/internal/vthread"
)

// Re-exported program-authoring API. These are aliases, so values flow
// freely between the public surface and the internal engines.
type (
	// Thread is a virtual thread of the program under test.
	Thread = vthread.Thread
	// Program is the body of the initial thread.
	Program = vthread.Program
	// Runnable is either a closure Program or a *CompiledProgram; every
	// entry point that executes a program accepts both.
	Runnable = vthread.Runnable
	// CompiledProgram is a program in instruction form (built with a
	// Builder); it runs on the goroutine-free flat engine.
	CompiledProgram = vthread.CompiledProgram
	// Builder constructs CompiledPrograms.
	Builder = vthread.Builder
	// Code is one thread body under construction in a Builder.
	Code = vthread.Code
	// Mutex is a non-recursive lock.
	Mutex = vthread.Mutex
	// Cond is a FIFO condition variable.
	Cond = vthread.Cond
	// Sem is a counting semaphore.
	Sem = vthread.Sem
	// Barrier is an n-party generation barrier.
	Barrier = vthread.Barrier
	// IntVar is a shared integer variable.
	IntVar = vthread.IntVar
	// Atomic is a shared integer with SC-atomic operations.
	Atomic = vthread.Atomic
	// Array is a shared integer array with a modelled bounds checker.
	Array = vthread.Array
	// Chan is a bounded FIFO channel: a first-class substrate primitive
	// whose Send/Recv/Try*/Close are single visible operations, usable as
	// cases of a multi-way Select.
	Chan = vthread.Chan
	// SelectCase is one send or receive case of Thread.Select.
	SelectCase = vthread.SelectCase
	// WaitGroup models sync.WaitGroup (negative counters crash, as in Go).
	WaitGroup = vthread.WaitGroup
	// Once models sync.Once (reentrant Do self-deadlocks, as in Go).
	Once = vthread.Once
	// Timer is a one-shot virtual timer (time.Timer over the virtual
	// clock): its firing is a schedulable pseudo-step of the clock thread,
	// explored like any other scheduling choice instead of raced against
	// wall time. Created with Thread.NewTimer/Thread.After.
	Timer = vthread.Timer
	// Ticker is a repeating virtual timer (time.Ticker over the virtual
	// clock); a leaked ticker fires once into its full slot and goes
	// quiet, so a receiver blocked after Stop is a modelled deadlock.
	Ticker = vthread.Ticker
	// Ctx models context.Context as a derived-cancellation tree over
	// channel close semantics: WithCancel/WithTimeout build the tree,
	// Done exposes the cancellation channel, and deadline firings are
	// clock steps. Created with Thread.WithCancel/Thread.WithTimeout.
	Ctx = vthread.Ctx
	// Footprint is the N-ary set of shared-object keys a pending operation
	// touches, as exposed to choosers via PendingInfo.
	Footprint = vthread.Footprint
	// ThreadID identifies a thread (creation order, 0 = initial).
	ThreadID = vthread.ThreadID
	// Schedule is a sequence of thread choices — the unit of exploration.
	Schedule = sched.Schedule
	// Failure describes an exposed bug.
	Failure = vthread.Failure
	// Outcome summarises a single execution.
	Outcome = vthread.Outcome
	// Config parameterises an exploration.
	Config = explore.Config
	// Result is the outcome of an exploration.
	Result = explore.Result
	// Technique selects an exploration technique.
	Technique = explore.Technique
	// Checkpoint is a serialized exploration frontier: an interrupted or
	// deadline-stopped search (Config.CheckpointPath) can be reloaded with
	// LoadCheckpoint and continued with Resume, finishing with exactly the
	// result an uninterrupted run produces.
	Checkpoint = explore.Checkpoint
	// CheckpointMeta is caller context (benchmark name, promoted variable
	// set) carried verbatim inside checkpoint files so a resume can rebuild
	// the same program and visibility.
	CheckpointMeta = explore.CheckpointMeta
	// StopReason says why an exploration ended (Result.Stopped).
	StopReason = explore.StopReason
	// Chooser decides the next thread at each scheduling point; implement
	// it to plug in a custom search strategy. A Chooser instance is
	// confined to one execution — it is never called concurrently, though
	// the substrate's fast path invokes it from the running virtual
	// thread's goroutine — so give every concurrent World its own. A
	// Chooser that also implements vthread.StepObserver opts into the
	// forced-step fast path: scheduling points with exactly one enabled
	// thread skip the Choose call (see vthread.StepObserver).
	Chooser = vthread.Chooser
	// WorldOptions configures a single raw execution (advanced use). Each
	// World is confined to the goroutine that runs it — one world per
	// goroutine; see vthread.Options for the full concurrency contract.
	WorldOptions = vthread.Options
	// Executor is a reusable execution context: thread goroutines and all
	// per-execution buffers are recycled across runs, making a long
	// sequence of executions allocation-free in the substrate. Every
	// exploration driver in this library runs on Executors internally;
	// expose it for custom search loops that call Run/RunWith millions of
	// times. The returned Outcome and its Trace are valid only until the
	// next run — clone what you retain — and an Executor is confined to
	// one goroutine (one Executor per worker). Close it when done.
	Executor = vthread.Executor
)

// DefaultCase is the index Thread.Select returns when its default fires.
const DefaultCase = vthread.DefaultCase

// Context cancellation causes reported by Ctx.Err.
const (
	// CtxCanceled is Ctx.Err after an explicit Cancel (context.Canceled).
	CtxCanceled = vthread.CtxCanceled
	// CtxDeadlineExceeded is Ctx.Err after a deadline fire
	// (context.DeadlineExceeded).
	CtxDeadlineExceeded = vthread.CtxDeadlineExceeded
)

// RecvCase builds a receive case for Thread.Select.
func RecvCase(c *Chan) SelectCase { return vthread.RecvCase(c) }

// SendCase builds a send case for Thread.Select.
func SendCase(c *Chan, v int) SelectCase { return vthread.SendCase(c, v) }

// NewExecutor creates a reusable execution context (see Executor). Unlike
// RunOnce, opts.Chooser may be nil if every run supplies its own chooser
// via RunWith.
func NewExecutor(opts WorldOptions) *Executor {
	return vthread.NewExecutor(opts)
}

// Exploration techniques (the paper's §5 phases).
const (
	// DFS is unbounded depth-first search.
	DFS = explore.DFS
	// IPB is iterative preemption bounding.
	IPB = explore.IPB
	// IDB is iterative delay bounding.
	IDB = explore.IDB
	// Rand is the naive random scheduler.
	Rand = explore.Rand
	// DPOR is unbounded depth-first search with source-set style dynamic
	// partial-order reduction plus sleep sets: the same bug verdicts as
	// DFS over typically far fewer executions, with redundant runs cut
	// short by chooser-initiated abort. Parallel (Config.Workers > 1)
	// DPOR preserves verdicts and completeness; its schedule counts are
	// exact unless work-stealing duplicated an equivalence class.
	DPOR = explore.DPOR
)

// Failure kinds.
const (
	// FailAssert is an assertion or output-check failure.
	FailAssert = vthread.FailAssert
	// FailDeadlock is a global deadlock.
	FailDeadlock = vthread.FailDeadlock
	// FailCrash is a modelled memory-safety crash.
	FailCrash = vthread.FailCrash
	// FailPanic is a Go panic in the program body, contained by the
	// substrate and reported as an ordinary replayable failure.
	FailPanic = vthread.FailPanic
)

// Stop reasons (Result.Stopped).
const (
	// StopCompleted (the zero value) is a natural end of the search.
	StopCompleted = explore.StopCompleted
	// StopLimit means a schedule or execution budget truncated the search.
	StopLimit = explore.StopLimit
	// StopDeadline means Config.Deadline passed.
	StopDeadline = explore.StopDeadline
	// StopInterrupted means Config.Interrupt was closed.
	StopInterrupted = explore.StopInterrupted
)

// LoadCheckpoint reads and validates a checkpoint file written by an
// exploration with Config.CheckpointPath set.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	return explore.LoadCheckpoint(path)
}

// Resume continues a checkpointed exploration. cfg supplies the program
// and environment (Program, Visible, BoundsCheck, MaxSteps, Debug,
// Workers) plus fresh stop/checkpoint controls; the search parameters
// (Limit, Seed, MaxBound, MaxExecutions) come from the checkpoint. A run
// that was interrupted, checkpointed and resumed finishes with exactly
// the result — counts, bounds, witness — of an uninterrupted run.
func Resume(ck *Checkpoint, cfg Config) (*Result, error) {
	return explore.Resume(ck, cfg)
}

// Explore searches the schedule space of cfg.Program with the given
// technique and reports what it found (bug, witness schedule, schedule
// counts). It is the main entry point of the library.
//
// Set Config.Workers > 1 to explore in parallel: DFS/IPB/IDB partition the
// search tree across a work-stealing worker pool (and IPB/IDB additionally
// overlap bound k+1 speculatively behind bound k), while Rand shards its
// independent runs. For Rand, and for DFS/IPB/IDB whenever the search
// completes within Config.Limit, the result — counts, bounds,
// completeness, first bug, witness — is identical to a sequential
// exploration; when the limit truncates a systematic search, totals stay
// exact but which schedules (and hence which bug, if any) fall inside the
// budget is timing-dependent. With Workers > 1 the Program body runs
// concurrently in separate Worlds and must confine its state to the
// invocation.
func Explore(t Technique, cfg Config) *Result {
	return explore.Run(t, cfg)
}

// ExploreSleepSet performs depth-first search with sleep-set partial-order
// reduction: it covers the same failure states as Explore(DFS, …) while
// counting only one representative schedule per equivalence class of
// commuting operations — often orders of magnitude fewer. Runs detected
// as redundant are cut short through the chooser-abort path rather than
// executed to termination (Result.AbortedExecutions counts them). (The
// paper's §7 names partial-order reduction as the natural extension of
// the study; Explore(DPOR, …) adds race-driven backtracking on top and
// does run on the parallel pool.) Sleep-set search is sequential:
// Config.Workers is ignored here, because its cross-branch state is not
// partitioned for the parallel driver the way the DPOR engine's is.
func ExploreSleepSet(cfg Config) *Result {
	return explore.RunSleepSetDFS(cfg)
}

// Minimize simplifies a buggy schedule: it greedily merges same-thread
// blocks while the bug still reproduces, reducing the preemption count —
// the "simple counterexample traces" benefit of §1 of the paper, made
// available for witnesses found by unbounded or random search. newProgram
// must build a fresh program instance per call.
func Minimize(newProgram func() Runnable, witness Schedule, visible func(string) bool) *MinimizedWitness {
	return simplify.Minimize(newProgram, witness, simplify.Options{Visible: visible})
}

// MinimizedWitness is the result of Minimize.
type MinimizedWitness = simplify.Result

// DetectRaces performs the paper's race-detection phase: runs independent
// randomly scheduled executions of program with every shared access
// visible, and returns the union of variables involved in data races. Feed
// the result to Promote to obtain the Visible predicate for Config.
func DetectRaces(program Runnable, runs int, seed uint64) []string {
	return race.RunPhase(race.PhaseConfig{Program: program, Runs: runs, Seed: seed}).Racy
}

// Promote converts a racy-variable list (from DetectRaces) into the
// Config.Visible predicate: exactly those variables become scheduling
// points.
func Promote(racy []string) func(key string) bool {
	return race.Promoted(racy)
}

// Replay executes program under the recorded schedule and returns the
// outcome. ok is false when the schedule is infeasible for this program
// (replay diverged). Use it to reproduce a Result.Witness.
func Replay(program Runnable, s Schedule) (out *Outcome, ok bool) {
	rep := vthread.NewReplay(s)
	w := vthread.NewWorld(vthread.Options{Chooser: rep})
	o := w.Run(vthread.AsProgram(program))
	return o, !rep.Failed()
}

// ReplayVisible is Replay with an explicit visibility predicate; a witness
// recorded under promoted visibility only replays under the same
// visibility.
func ReplayVisible(program Runnable, s Schedule, visible func(string) bool) (out *Outcome, ok bool) {
	rep := vthread.NewReplay(s)
	w := vthread.NewWorld(vthread.Options{Chooser: rep, Visible: visible})
	o := w.Run(vthread.AsProgram(program))
	return o, !rep.Failed()
}

// RunOnce executes program once under a caller-supplied chooser (round
// robin by default) — the lowest-level entry point. The execution world is
// confined to the calling goroutine (one world per goroutine): concurrent
// RunOnce calls are safe provided each passes its own Chooser/Sink and the
// program body keeps all state local to the invocation. For a loop of many
// executions, use NewExecutor instead: it recycles the per-execution
// goroutines and buffers that RunOnce rebuilds every call.
func RunOnce(program Runnable, opts WorldOptions) *Outcome {
	if opts.Chooser == nil {
		opts.Chooser = vthread.RoundRobin()
	}
	return vthread.NewWorld(opts).Run(vthread.AsProgram(program))
}

// NewBuilder starts a new compiled program. Programs in instruction form
// execute on the flat single-goroutine engine (see the vthread package
// docs), which steps the same schedules as the goroutine engine several
// times faster; every entry point taking a Runnable accepts the result of
// Build.
func NewBuilder() *Builder { return vthread.NewBuilder() }

// AsProgram converts any Runnable to a closure Program (a CompiledProgram
// is bridged onto the goroutine engine, trace-identically).
func AsProgram(r Runnable) Program { return vthread.AsProgram(r) }

// RoundRobin returns the deterministic non-preemptive round-robin chooser
// (the zero-delay scheduler of delay bounding).
func RoundRobin() Chooser { return vthread.RoundRobin() }

// RandomChooser returns the naive uniform random chooser with the given
// seed.
func RandomChooser(seed uint64) Chooser { return vthread.NewRandom(seed) }

// NewRef creates a shared variable of arbitrary type T in the program
// under test (free function because Go methods cannot add type
// parameters).
func NewRef[T any](t *Thread, name string, init T) *Ref[T] {
	return vthread.NewRef[T](t, name, init)
}

// Ref is a shared variable of arbitrary type.
type Ref[T any] = vthread.Ref[T]
