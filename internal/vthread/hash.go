package vthread

import "fmt"

// Program content addressing for the schedule corpus.
//
// A corpus entry must survive a benchmark rename but invalidate when the
// program's semantics change, so the key is a hash of the program itself,
// not of its registry name. Two components feed the hash:
//
//   - The structural component walks a CompiledProgram's instruction tree:
//     opcodes, object handles, register assignments, string literals, case
//     shapes, spawn specs and the declared-object environment. Operand
//     closures (func(*Thread) int and friends) cannot be inspected
//     directly, so each is probe-evaluated against a zeroed thread context
//     (registers 0, objects nil, panics recovered): a literal operand
//     yields its literal, a register operand yields its zero-state value,
//     and either way a changed literal changes the hash — even on branches
//     an execution never takes.
//   - The behavioral component executes the program a fixed number of times
//     under deterministic choosers (round-robin and one pinned random seed)
//     and hashes the resulting traces and outcomes, capturing dynamic
//     structure the static walk abstracts away.
//
// Closure Programs have no inspectable structure at all and get the
// behavioral component only. That is the documented trade-off for the
// registry's remaining closure-form fallback exerciser: its corpus entries
// invalidate on any change the canonical runs can observe (trace, failure,
// counters), and survive everything else.

// hashVersion is folded into every program hash so a change to the hashing
// scheme itself invalidates all corpus entries at once.
const hashVersion = "scthash/v1"

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// progHasher accumulates an FNV-1a/64 over a canonical byte encoding.
type progHasher struct{ h uint64 }

func newProgHasher() *progHasher {
	ph := &progHasher{h: fnvOffset64}
	ph.str(hashVersion)
	return ph
}

func (p *progHasher) byte(c byte) {
	p.h = (p.h ^ uint64(c)) * fnvPrime64
}

// num folds an integer with an unambiguous little-endian encoding.
func (p *progHasher) num(v int) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		p.byte(byte(u))
		u >>= 8
	}
}

// str folds a length-prefixed string so "ab"+"c" and "a"+"bc" differ.
func (p *progHasher) str(s string) {
	p.num(len(s))
	for i := 0; i < len(s); i++ {
		p.byte(s[i])
	}
}

func (p *progHasher) bool(b bool) {
	if b {
		p.byte(1)
	} else {
		p.byte(0)
	}
}

func (p *progHasher) specs(tag byte, specs []nameInit) {
	p.byte(tag)
	p.num(len(specs))
	for _, s := range specs {
		p.str(s.name)
		p.num(s.arg)
	}
}

func (p *progHasher) names(tag byte, names []string) {
	p.byte(tag)
	p.num(len(names))
	for _, n := range names {
		p.str(n)
	}
}

// Probe evaluation: operand closures run against a thread whose registers
// are zero and whose object slots are nil. User operands only read thread
// state (Reg/Cell/Obj), so evaluation is side-effect free; anything that
// panics on the zeroed context (a type assertion on a nil object slot,
// say) folds a panic marker instead.

func safeInt(t *Thread, f func(*Thread) int) (v int, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return f(t), true
}

func (p *progHasher) probeInt(t *Thread, f func(*Thread) int) {
	if f == nil {
		p.byte(0)
		return
	}
	if v, ok := safeInt(t, f); ok {
		p.byte(1)
		p.num(v)
	} else {
		p.byte(2)
	}
}

func (p *progHasher) probeStr(t *Thread, f func(*Thread) string) {
	if f == nil {
		p.byte(0)
		return
	}
	s, ok := func() (s string, ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		return f(t), true
	}()
	if ok {
		p.byte(1)
		p.str(s)
	} else {
		p.byte(2)
	}
}

func (p *progHasher) probeBool(t *Thread, f func(*Thread) bool) {
	if f == nil {
		p.byte(0)
		return
	}
	v, ok := func() (v, ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		return f(t), true
	}()
	if ok {
		p.byte(1)
		p.bool(v)
	} else {
		p.byte(2)
	}
}

// probeKey folds the footprint key of an object-valued operand (a mutex or
// channel selector): the key identifies which declared or dynamic object
// the operand resolves to in the zeroed context.
func (p *progHasher) probeKey(t *Thread, key func(*Thread) (string, bool)) {
	if key == nil {
		p.byte(0)
		return
	}
	s, ok := func() (s string, ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		return key(t)
	}()
	if ok {
		p.byte(1)
		p.str(s)
	} else {
		p.byte(2)
	}
}

func (p *progHasher) block(t *Thread, b *block) {
	if b == nil {
		p.num(-1)
		return
	}
	p.num(len(b.code))
	for i := range b.code {
		p.instr(t, &b.code[i])
	}
}

func (p *progHasher) instr(t *Thread, in *instr) {
	p.num(int(in.op))
	p.num(in.h)
	p.num(in.h2)
	p.num(int(in.dst))
	p.num(int(in.dst2))
	p.num(int(in.dst3))
	p.num(int(in.odst))
	p.num(int(in.osrc))
	p.num(int(in.oparent))
	p.str(in.str)
	p.bool(in.dl)
	p.probeInt(t, in.x)
	p.probeInt(t, in.y)
	p.probeBool(t, in.cond)
	if in.mu == nil {
		p.probeKey(t, nil)
	} else {
		p.probeKey(t, func(t *Thread) (string, bool) {
			m := in.mu(t)
			if m == nil {
				return "", false
			}
			return m.key, true
		})
	}
	if in.ch == nil {
		p.probeKey(t, nil)
	} else {
		p.probeKey(t, func(t *Thread) (string, bool) {
			c := in.ch(t)
			if c == nil {
				return "", false
			}
			return c.key, true
		})
	}
	p.probeStr(t, in.name)
	p.num(len(in.args))
	for _, a := range in.args {
		if a == nil {
			p.byte(0)
			continue
		}
		s, ok := func() (s string, ok bool) {
			defer func() {
				if recover() != nil {
					ok = false
				}
			}()
			return fmt.Sprintf("%v", a(t)), true
		}()
		if ok {
			p.byte(1)
			p.str(s)
		} else {
			p.byte(2)
		}
	}
	p.num(len(in.cases))
	for _, c := range in.cases {
		p.bool(c.send)
		if c.ch == nil {
			p.probeKey(t, nil)
		} else {
			ch := c.ch
			p.probeKey(t, func(t *Thread) (string, bool) {
				cc := ch(t)
				if cc == nil {
					return "", false
				}
				return cc.key, true
			})
		}
		p.probeInt(t, c.val)
	}
	p.num(len(in.specs))
	for _, s := range in.specs {
		p.num(s.body)
		p.num(len(s.args))
		for _, a := range s.args {
			p.probeInt(t, a)
		}
		p.num(len(s.oargs))
		for _, o := range s.oargs {
			p.num(int(o))
		}
		p.num(int(s.dst))
	}
	p.block(t, in.blk)
	p.block(t, in.blk2)
}

// structural folds the full compiled form: declared objects and every body.
func (p *progHasher) structural(cp *CompiledProgram) {
	p.specs('v', cp.varSpecs)
	p.specs('a', cp.atomSpecs)
	p.specs('A', cp.arrSpecs)
	p.specs('c', cp.chanSpecs)
	p.names('m', cp.muNames)
	p.names('r', cp.rwNames)
	p.names('C', cp.condNames)
	p.specs('s', cp.semSpecs)
	p.specs('b', cp.barSpecs)
	p.names('w', cp.wgNames)
	p.names('o', cp.onceNames)
	p.byte('L')
	p.num(len(cp.cellInit))
	for _, v := range cp.cellInit {
		p.num(v)
	}
	p.names('R', cp.refNames)
	p.byte('B')
	p.num(len(cp.bodies))
	// One probe thread, re-initialised per body so operand closures see a
	// zeroed register file of the right body's shape.
	t := &Thread{fi: &interp{}}
	env := cp.newEnv(&World{})
	for bi, fb := range cp.bodies {
		p.num(fb.nargs)
		p.num(fb.noargs)
		p.num(fb.nlocals)
		p.num(fb.nobjs)
		t.fi.init(cp, env, bi, nil, nil)
		p.block(t, fb.code)
	}
}

// outcome folds one canonical execution's observable result.
func (p *progHasher) outcome(out *Outcome) {
	p.num(len(out.Trace))
	for _, id := range out.Trace {
		p.num(int(id))
	}
	p.num(out.PC)
	p.num(out.DC)
	p.num(out.SchedPoints)
	p.num(out.SelectPoints)
	p.num(out.TimerPoints)
	p.num(out.Threads)
	p.bool(out.StepLimitHit)
	if out.Failure != nil {
		p.num(int(out.Failure.Kind))
		p.num(int(out.Failure.Thread))
		p.str(out.Failure.Message)
	} else {
		p.num(-1)
	}
}

// behavioralSeed pins the random chooser used for the second canonical run.
const behavioralSeed = 0x9e3779b97f4a7c15

// ProgramHash returns the stable content hash of a program as a 16-digit
// hex string. maxSteps bounds each canonical execution (0 means
// DefaultMaxSteps). Equal programs hash equal across processes and
// builds; a semantic change to instructions, declared objects, thread
// structure or canonical-run behavior changes the hash.
//
// The caller's program value is executed (twice) but not retained; like
// any Runnable handed to an Executor it must tolerate repeated runs.
func ProgramHash(r Runnable, maxSteps int) string {
	ph := newProgHasher()
	if cp, ok := r.(*CompiledProgram); ok {
		ph.byte('S')
		ph.structural(cp)
	} else {
		ph.byte('P')
	}
	// Behavioral component: every shared access visible (nil Visible) and
	// bounds checking on, for maximal sensitivity to literal changes.
	e := NewExecutor(Options{
		Chooser:     RoundRobin(),
		MaxSteps:    maxSteps,
		BoundsCheck: true,
	})
	defer e.Close()
	ph.byte('1')
	ph.outcome(e.Run(r))
	ph.byte('2')
	ph.outcome(e.RunWith(NewRandom(behavioralSeed), nil, r))
	return fmt.Sprintf("%016x", ph.h)
}
