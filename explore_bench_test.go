// Reduction benchmarks for the pruning stack: DFS versus sleep-set DFS
// versus source-set DPOR on CS-suite programs. The numbers that matter are
// executions per full exploration, total executed steps (the abort path's
// saving) and wall-clock; `make bench-json` records them as
// BENCH_explore.json next to the substrate numbers in
// BENCH_substrate.json.
package sctbench

import (
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
)

// exploreReductionPrograms are small enough for DFS to enumerate the full
// space within the limit, so the reduction factors are exact, not
// budget-truncated.
var exploreReductionPrograms = []string{
	"CS.account_bad",
	"CS.lazy01_bad",
	"CS.arithmetic_prog_bad",
}

// BenchmarkExploreReduction runs one complete exploration per iteration
// and reports executions, counted schedules, executed steps and
// executions/sec per technique. The per-op time is the headline wall-clock
// comparison: DPOR must beat DFS by more than its reduction bookkeeping
// costs.
func BenchmarkExploreReduction(b *testing.B) {
	techniques := []struct {
		name string
		run  func(cfg explore.Config) *explore.Result
	}{
		{"dfs", func(cfg explore.Config) *explore.Result { return explore.RunDFS(cfg) }},
		{"sleepset", explore.RunSleepSetDFS},
		{"dpor", func(cfg explore.Config) *explore.Result { return explore.RunDPOR(cfg) }},
	}
	for _, name := range exploreReductionPrograms {
		bm := bench.ByName(name)
		if bm == nil {
			b.Fatalf("unknown benchmark %s", name)
		}
		for _, tech := range techniques {
			b.Run(name+"/"+tech.name, func(b *testing.B) {
				prog := bm.New()
				var execs, scheds, aborted int
				var steps int64
				bugFound := false
				for i := 0; i < b.N; i++ {
					r := tech.run(explore.Config{
						Program: prog, BoundsCheck: bm.BoundsCheck,
						MaxSteps: bm.MaxSteps, Limit: 20000,
					})
					execs += r.Executions
					scheds += r.Schedules
					aborted += r.AbortedExecutions
					steps += r.TotalSteps
					bugFound = r.BugFound
				}
				if !bugFound {
					b.Fatalf("%s/%s: bug not found", name, tech.name)
				}
				n := float64(b.N)
				b.ReportMetric(float64(execs)/n, "execs/explore")
				b.ReportMetric(float64(scheds)/n, "schedules/explore")
				b.ReportMetric(float64(steps)/n, "steps/explore")
				b.ReportMetric(float64(aborted)/n, "aborted/explore")
				reportExecRate(b, execs)
			})
		}
	}
}
