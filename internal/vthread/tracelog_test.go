package vthread

import (
	"strings"
	"testing"
)

func TestTraceLoggerRecordsEvents(t *testing.T) {
	log := NewTraceLogger()
	w := NewWorld(Options{Chooser: RoundRobin(), Sink: log})
	w.Run(Program(func(t0 *Thread) {
		m := t0.NewMutex("m")
		v := t0.NewVar("v", 0)
		c := t0.Spawn(func(tw *Thread) {
			m.Lock(tw)
			v.Store(tw, 1)
			m.Unlock(tw)
		})
		t0.Join(c)
		_ = v.Load(t0)
	}))
	out := log.String()
	for _, want := range []string{
		"T0  spawn T1",
		"T1  acquire mutex/m",
		"T1  write var/v",
		"T1  release mutex/m",
		"T0  read  var/v",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
	if log.Len() == 0 {
		t.Error("Len() = 0")
	}
}

func TestTeeFansOut(t *testing.T) {
	a := NewTraceLogger()
	b := NewTraceLogger()
	w := NewWorld(Options{Chooser: RoundRobin(), Sink: Tee(a, b)})
	w.Run(Program(func(t0 *Thread) {
		v := t0.NewVar("v", 0)
		v.Store(t0, 1)
	}))
	if a.Len() == 0 || a.Len() != b.Len() {
		t.Fatalf("tee lengths %d vs %d", a.Len(), b.Len())
	}
}
