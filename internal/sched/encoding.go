package sched

import (
	"encoding/json"
	"fmt"
)

// WitnessFile is the on-disk form of a reproducible bug witness: the
// schedule plus everything needed to replay it faithfully (the promoted
// visibility set and the exploration's cost summary). Serialised as JSON
// by Encode/Decode; cmd/sctrun reads and writes these.
type WitnessFile struct {
	// Benchmark names the program under test (informational).
	Benchmark string `json:"benchmark,omitempty"`
	// Technique names the search that found the witness (informational).
	Technique string `json:"technique,omitempty"`
	// Schedule is the thread choice sequence.
	Schedule Schedule `json:"schedule"`
	// Racy is the promoted-variable set the witness was recorded under;
	// replaying under different visibility diverges.
	Racy []string `json:"racy,omitempty"`
	// PC and DC document the witness's costs.
	PC int `json:"pc"`
	DC int `json:"dc"`
	// Failure is the human-readable failure the schedule exposes.
	Failure string `json:"failure,omitempty"`
}

// Encode renders the witness as indented JSON.
func (w *WitnessFile) Encode() ([]byte, error) {
	return json.MarshalIndent(w, "", "  ")
}

// DecodeWitness parses a witness file.
func DecodeWitness(data []byte) (*WitnessFile, error) {
	var w WitnessFile
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("sched: bad witness file: %w", err)
	}
	for i, t := range w.Schedule {
		if t < 0 {
			return nil, fmt.Errorf("sched: witness step %d names invalid thread %d", i, t)
		}
	}
	return &w, nil
}
