package explore

// Sleep-set partial-order reduction for the unbounded depth-first search —
// the extension §7 of the paper names as future work ("various
// partial-order reduction techniques that reduce the number of schedules
// explored during systematic testing"). Following the paper's own
// methodology note, POR is kept out of the bounded phases (the
// interaction of POR and schedule bounding "is complex and the topic of
// recent and ongoing work", §5): this explorer accelerates plain DFS.
//
// The classic algorithm [Godefroid '96]: each scheduling point carries a
// sleep set of threads whose exploration there is provably redundant.
// After exploring a branch via thread t, t joins the sleep set for the
// remaining siblings; a child inherits the sleeping threads whose pending
// operations are independent of the branch just taken. Independence comes
// from the substrate's pending-operation footprints
// (vthread.PendingInfo.Independent): operations commute when they touch
// disjoint objects or share objects only read-only.

import (
	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

type ssNode struct {
	order []sched.ThreadID
	infos []vthread.PendingInfo // pending op of order[i] at this point
	idx   int
	sleep map[sched.ThreadID]vthread.PendingInfo
	// isCase marks a case-decision node (vthread.Context.SelectOf): order
	// holds ready case indices of a granted Select, not thread ids. Every
	// case is explored — alternative cases are distinct behaviours of the
	// selecting thread, never Mazurkiewicz-equivalent — and the thread-
	// keyed sleep map is never consulted with (or extended by) the case
	// indices.
	isCase bool
}

// ssEngine is the sleep-set DFS driver; like engine, it is the Chooser of
// the executions it spawns.
type ssEngine struct {
	cfg        Config
	exec       *vthread.Executor
	stack      []ssNode
	executions int
	// freeOrders and freeInfos recycle popped nodes' buffers, as in engine.
	freeOrders [][]sched.ThreadID
	freeInfos  [][]vthread.PendingInfo
	// pruned counts enabled siblings retired unexplored because they were
	// asleep: whole subtrees plain DFS would have walked.
	pruned int
}

// popOrderInfos pops recycled order/infos buffers from the free lists and
// fills them with the canonical choice order and the per-choice pending
// footprints for ctx — the fresh-node scaffold shared by the pruning
// engines (ssEngine and dporEngine).
func popOrderInfos(freeOrders *[][]sched.ThreadID, freeInfos *[][]vthread.PendingInfo,
	ctx vthread.Context) ([]sched.ThreadID, []vthread.PendingInfo) {
	var order []sched.ThreadID
	if n := len(*freeOrders); n > 0 {
		order, *freeOrders = (*freeOrders)[n-1], (*freeOrders)[:n-1]
	}
	order = sched.AppendCanonicalOrder(order, ctx.Enabled, ctx.Last, ctx.NumThreads)
	var infos []vthread.PendingInfo
	if n := len(*freeInfos); n > 0 {
		infos, *freeInfos = (*freeInfos)[n-1], (*freeInfos)[:n-1]
	}
	for _, t := range order {
		infos = append(infos, ctx.PendingOf(t))
	}
	return order, infos
}

// Choose implements vthread.Chooser.
func (e *ssEngine) Choose(ctx vthread.Context) sched.ThreadID {
	if ctx.Step < len(e.stack) {
		nd := &e.stack[ctx.Step]
		return nd.order[nd.idx]
	}
	if idx := e.push(ctx); idx >= 0 {
		return e.stack[len(e.stack)-1].order[idx]
	}
	return ctx.Enabled[0] // ignored by the abort contract
}

// ObserveForcedStep implements vthread.StepObserver: a forced step still
// needs its node — sleep sets propagate through it, and a single enabled
// thread can itself be asleep, in which case push aborts the run exactly
// as Choose would have.
func (e *ssEngine) ObserveForcedStep(ctx vthread.Context) {
	if ctx.Step < len(e.stack) {
		return
	}
	e.push(ctx)
}

// push appends the fresh node for ctx and returns the index of the choice
// taken: the first non-sleeping thread in canonical order. If everything
// enabled is asleep, this subtree is fully redundant (Mazurkiewicz-
// equivalent to an explored schedule): the run is aborted right here — the
// substrate kills the remaining threads and the schedule's tail is never
// executed — and push returns -1 with no alternatives on offer. The node
// is then not pushed; its buffers go straight back to the free lists.
func (e *ssEngine) push(ctx vthread.Context) int {
	order, infos := popOrderInfos(&e.freeOrders, &e.freeInfos, ctx)
	var sleep map[sched.ThreadID]vthread.PendingInfo
	if len(e.stack) > 0 {
		parent := &e.stack[len(e.stack)-1]
		sleep = childSleep(parent)
	}
	nd := ssNode{order: order, infos: infos, sleep: sleep, isCase: ctx.SelectOf != vthread.NoThread}
	nd.idx = firstAwake(nd, 0)
	if nd.idx < 0 {
		ctx.Abort()
		e.pruned += len(order)
		e.freeOrders = append(e.freeOrders, order[:0])
		e.freeInfos = append(e.freeInfos, infos[:0])
		return -1
	}
	e.stack = append(e.stack, nd)
	return nd.idx
}

// childSleep computes the sleep set a child inherits: sleeping threads
// (plus previously explored siblings) whose ops are independent of the
// branch being taken now.
func childSleep(parent *ssNode) map[sched.ThreadID]vthread.PendingInfo {
	takenInfo := parent.infos[parent.idx]
	out := make(map[sched.ThreadID]vthread.PendingInfo)
	for t, info := range parent.sleep {
		if !parent.isCase && t == parent.order[parent.idx] {
			continue
		}
		if info.Independent(takenInfo) {
			out[t] = info
		}
	}
	if parent.isCase {
		// A case node's siblings are case indices, not threads: they must
		// never enter a thread-keyed sleep map. The inherited sleep above
		// was already filtered by the full select footprint (a superset of
		// the committed case's channel) at the enclosing thread node.
		return out
	}
	// Previously explored siblings are the order entries before idx that
	// were actually taken; with the firstAwake advance discipline those
	// are exactly the non-sleeping ones before idx.
	for i := 0; i < parent.idx; i++ {
		t := parent.order[i]
		if _, wasAsleep := parent.sleep[t]; wasAsleep {
			continue
		}
		if parent.infos[i].Independent(takenInfo) {
			out[t] = parent.infos[i]
		}
	}
	return out
}

// firstAwake returns the first index >= from whose thread is not asleep,
// or -1. At a case node the sleep map does not apply (its keys are thread
// ids, the order entries case indices): every case is awake.
func firstAwake(nd ssNode, from int) int {
	if nd.isCase {
		if from < len(nd.order) {
			return from
		}
		return -1
	}
	for i := from; i < len(nd.order); i++ {
		if _, asleep := nd.sleep[nd.order[i]]; !asleep {
			return i
		}
	}
	return -1
}

func (e *ssEngine) runOnce() *vthread.Outcome {
	e.executions++
	return e.exec.RunWith(e, nil, e.cfg.Program)
}

func (e *ssEngine) backtrack() bool {
	for len(e.stack) > 0 {
		nd := &e.stack[len(e.stack)-1]
		next := firstAwake(*nd, nd.idx+1)
		if next >= 0 {
			nd.idx = next
			return true
		}
		// Retire the node: its sleeping siblings were pruned subtrees. A
		// case node never prunes (and its order entries are not thread ids).
		if !nd.isCase {
			for _, t := range nd.order {
				if _, asleep := nd.sleep[t]; asleep {
					e.pruned++
				}
			}
		}
		e.freeOrders = append(e.freeOrders, nd.order[:0])
		e.freeInfos = append(e.freeInfos, nd.infos[:0])
		nd.order, nd.infos = nil, nil
		e.stack = e.stack[:len(e.stack)-1]
	}
	return false
}

// RunSleepSetDFS performs depth-first search with sleep-set partial-order
// reduction. It explores a subset of RunDFS's terminal schedules covering
// every Mazurkiewicz trace (one representative per equivalence class of
// commuting operations), so it reaches the same failure states with —
// often dramatically — fewer executions. A run whose enabled threads are
// all asleep is chooser-aborted on the spot (Result.AbortedExecutions),
// so redundant runs cost only their shared prefix, not the full schedule.
// With Config.Corpus and Config.ProgramHash set, the run is replay-first
// like Run's techniques, with witnesses labelled "sleepset".
func RunSleepSetDFS(cfg Config) *Result {
	if cfg.Corpus != nil && cfg.ProgramHash != "" {
		return replayFirst(DFS, "sleepset", cfg, runSleepSetCold)
	}
	return runSleepSetCold(cfg)
}

func runSleepSetCold(cfg Config) *Result {
	cfg = cfg.withDefaults()
	return runSequentialTree(cfg, &Result{Technique: DFS}, &ssEngine{cfg: cfg})
}
