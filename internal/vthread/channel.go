package vthread

// Chan is a bounded FIFO channel for programs under test. It is a
// first-class substrate primitive: Send, Recv, the try-variants, Close and
// membership in a Select are each a single visible operation whose
// enabledness is a predicate over the channel state (see ops.go), exactly
// like Mutex or Sem. This both gives channel-based programs the step
// granularity Go programs actually have (a send is one action, not a
// lock/wait/signal/unlock quartet) and gives partial-order reduction an
// exact single-object footprint ("chan/name") per operation.
//
// Semantics follow Go channels: sends block while full, receives block
// while empty and open, Close wakes all waiters, receive from a closed
// drained channel returns ok=false, send on a closed channel is a modelled
// crash (Go panics), and so is closing twice.
type Chan struct {
	key    string
	buf    []int
	head   int
	n      int
	closed bool
}

// NewChan creates a channel with the given unique name and capacity.
// Capacity zero is rendezvous-like: implemented as a one-slot buffer whose
// sender immediately hands off, which preserves the interleaving-relevant
// behaviour (a send is a synchronisation with the receive) under the
// substrate's serial execution.
func (t *Thread) NewChan(name string, capacity int) *Chan {
	if capacity < 1 {
		capacity = 1
	}
	return &Chan{
		key: "chan/" + name,
		buf: make([]int, capacity),
	}
}

// sendReady reports whether a send on c can commit right now. A closed
// channel counts as ready so the send-on-closed crash can manifest.
// Single source of truth for opChanSend enabledness and select send-case
// readiness.
func (c *Chan) sendReady() bool { return c.closed || c.n < len(c.buf) }

// recvReady reports whether a receive on c can commit right now (a value
// is buffered, or the channel is closed and the ok=false path commits).
// Single source of truth for opChanRecv enabledness and select recv-case
// readiness.
func (c *Chan) recvReady() bool { return c.n > 0 || c.closed }

// Committed channel operations are full acquire-release pairs on the
// channel key, not one-directional edges: the Go memory model orders a
// send before the receive that observes it AND the k-th receive before
// the (k+C)-th send completes (backpressure — the channel-as-semaphore
// idiom depends on it), so a recv that frees a slot must also *release*
// and the send that takes it must also *acquire*. This matches what the
// old mutex-backed composite provided through its internal lock; it is
// slightly stronger than Go for operations that never blocked on each
// other, which for the race detector errs conservatively (fewer reported
// races, never a spurious one the model forbids). Failed try-operations
// stay edge-free: nothing was observed.

// commitSend performs a send whose readiness is established: crash on a
// closed channel (Go panics), otherwise enqueue. Shared by Send, TrySend
// and select send-case commits.
func (c *Chan) commitSend(t *Thread, v int) {
	if c.closed {
		t.crash("send on closed channel %s", c.key)
	}
	t.sinkAcquire(c.key)
	c.buf[(c.head+c.n)%len(c.buf)] = v
	c.n++
	t.sinkRelease(c.key)
}

// commitRecv performs a receive whose readiness is established: dequeue,
// or report ok=false on a closed drained channel (the close happens
// before every receive that observes it, the ok=false ones included).
// Shared by Recv, TryRecv's closed path and select recv-case commits.
func (c *Chan) commitRecv(t *Thread) (v int, ok bool) {
	t.sinkAcquire(c.key)
	if c.n == 0 {
		// Ready with an empty buffer only when closed: the drained case.
		t.sinkRelease(c.key)
		return 0, false
	}
	v = c.buf[c.head]
	c.head = (c.head + 1) % len(c.buf)
	c.n--
	t.sinkRelease(c.key)
	return v, true
}

// Send enqueues v, blocking while the channel is full. Sending on a
// closed channel is a modelled crash (Go panics). For the race detector's
// happens-before relation every committed channel op is an acquire-release
// pair on the channel key (see the comment above commitSend).
func (c *Chan) Send(t *Thread, v int) {
	t.visible(pendingOp{kind: opChanSend, ch: c})
	c.commitSend(t, v)
}

// Recv dequeues a value, blocking while the channel is empty and open.
// ok is false when the channel is closed and drained.
func (c *Chan) Recv(t *Thread) (v int, ok bool) {
	t.visible(pendingOp{kind: opChanRecv, ch: c})
	return c.commitRecv(t)
}

// TrySend attempts a non-blocking send, reporting success. It is a visible
// operation whether or not it succeeds (the observation "the channel is
// full" is itself schedule-dependent). On a closed channel it crashes,
// like Send.
func (c *Chan) TrySend(t *Thread, v int) bool {
	t.visible(pendingOp{kind: opChanTry, ch: c})
	if !c.closed && c.n == len(c.buf) {
		return false
	}
	c.commitSend(t, v)
	return true
}

// TryRecv attempts a non-blocking receive. Like TrySend it is always a
// visible operation. A closed drained channel reports ok=false, matching
// Recv (and, like Recv, that observation is an acquire); an open empty
// channel reports ok=false with no happens-before edge — nothing was
// observed.
func (c *Chan) TryRecv(t *Thread) (v int, ok bool) {
	t.visible(pendingOp{kind: opChanTry, ch: c})
	if c.n == 0 && !c.closed {
		return 0, false
	}
	return c.commitRecv(t)
}

// Close closes the channel. Every blocked sender becomes enabled (and will
// crash, as in Go), every blocked receiver becomes enabled and drains or
// observes ok=false. Closing twice is a modelled crash (Go panics).
func (c *Chan) Close(t *Thread) {
	t.visible(pendingOp{kind: opChanClose, ch: c})
	c.closeCommit(t)
}

func (c *Chan) closeCommit(t *Thread) {
	if c.closed {
		t.crash("close of closed channel %s", c.key)
	}
	t.sinkAcquire(c.key)
	c.closed = true
	t.sinkRelease(c.key)
}

// Len returns the buffered element count (invisible inspection helper).
func (c *Chan) Len() int { return c.n }

// Cap returns the buffer capacity (invisible inspection helper).
func (c *Chan) Cap() int { return len(c.buf) }

// Closed reports whether the channel has been closed (invisible inspection
// helper).
func (c *Chan) Closed() bool { return c.closed }
