package vthread

// Chan is a bounded FIFO channel for programs under test, built from the
// substrate's own primitives (mutex + two condition variables), so its
// blocking behaviour is fully visible to the scheduler. It models Go
// channels closely enough to port channel-based programs onto the
// substrate: sends block when full, receives block when empty, Close
// releases all waiters, receive from a closed empty channel returns
// ok=false, and send on a closed channel is a crash (as in Go).
type Chan struct {
	key      string
	m        *Mutex
	sendable *Cond
	recvable *Cond
	buf      []int
	head     int
	n        int
	closed   bool
}

// NewChan creates a channel with the given unique name and capacity.
// Capacity zero is rendezvous-like: implemented as a one-slot buffer whose
// sender immediately hands off, which preserves the interleaving-relevant
// behaviour (a send is a synchronisation with the receive) under the
// substrate's serial execution.
func (t *Thread) NewChan(name string, capacity int) *Chan {
	if capacity < 1 {
		capacity = 1
	}
	return &Chan{
		key:      "chan/" + name,
		m:        t.NewMutex(name + ".chan.m"),
		sendable: t.NewCond(name + ".chan.send"),
		recvable: t.NewCond(name + ".chan.recv"),
		buf:      make([]int, capacity),
	}
}

// Send enqueues v, blocking while the channel is full. Sending on a
// closed channel is a modelled crash (Go panics).
func (c *Chan) Send(t *Thread, v int) {
	c.m.Lock(t)
	for c.n == len(c.buf) && !c.closed {
		c.sendable.Wait(t, c.m)
	}
	if c.closed {
		t.crash("send on closed channel %s", c.key)
	}
	c.buf[(c.head+c.n)%len(c.buf)] = v
	c.n++
	c.recvable.Signal(t)
	c.m.Unlock(t)
}

// Recv dequeues a value, blocking while the channel is empty and open.
// ok is false when the channel is closed and drained.
func (c *Chan) Recv(t *Thread) (v int, ok bool) {
	c.m.Lock(t)
	for c.n == 0 && !c.closed {
		c.recvable.Wait(t, c.m)
	}
	if c.n == 0 {
		c.m.Unlock(t)
		return 0, false
	}
	v = c.buf[c.head]
	c.head = (c.head + 1) % len(c.buf)
	c.n--
	c.sendable.Signal(t)
	c.m.Unlock(t)
	return v, true
}

// TrySend attempts a non-blocking send, reporting success.
func (c *Chan) TrySend(t *Thread, v int) bool {
	c.m.Lock(t)
	defer c.m.Unlock(t)
	if c.closed {
		t.crash("send on closed channel %s", c.key)
	}
	if c.n == len(c.buf) {
		return false
	}
	c.buf[(c.head+c.n)%len(c.buf)] = v
	c.n++
	c.recvable.Signal(t)
	return true
}

// TryRecv attempts a non-blocking receive.
func (c *Chan) TryRecv(t *Thread) (v int, ok bool) {
	c.m.Lock(t)
	defer c.m.Unlock(t)
	if c.n == 0 {
		return 0, false
	}
	v = c.buf[c.head]
	c.head = (c.head + 1) % len(c.buf)
	c.n--
	c.sendable.Signal(t)
	return v, true
}

// Close closes the channel, waking all blocked senders and receivers.
// Closing twice is a modelled crash (Go panics).
func (c *Chan) Close(t *Thread) {
	c.m.Lock(t)
	if c.closed {
		t.crash("close of closed channel %s", c.key)
	}
	c.closed = true
	c.sendable.Broadcast(t)
	c.recvable.Broadcast(t)
	c.m.Unlock(t)
}

// Len returns the buffered element count (invisible inspection helper).
func (c *Chan) Len() int { return c.n }

// RWMutex is a writer-preferring reader/writer lock built on the
// substrate's enabledness machinery: readers share, writers exclude, and
// a waiting writer blocks new readers (no writer starvation under fair
// schedules).
type RWMutex struct {
	key            string
	readers        int
	writer         *Thread
	waitingWriters int
}

// NewRWMutex creates a reader/writer lock with the given unique name.
func (t *Thread) NewRWMutex(name string) *RWMutex {
	return &RWMutex{key: "rwmutex/" + name}
}

// RLock acquires the lock shared. Disabled while a writer holds it or
// waits for it.
func (l *RWMutex) RLock(t *Thread) {
	t.visible(pendingOp{kind: opRLock, rw: l})
	l.readers++
	t.sinkAcquire(l.key)
}

// RUnlock releases a shared hold; releasing without holding is a crash.
func (l *RWMutex) RUnlock(t *Thread) {
	t.visible(pendingOp{kind: opRUnlock, rw: l})
	if l.readers == 0 {
		t.crash("RUnlock of %s with no readers", l.key)
	}
	t.sinkRelease(l.key)
	l.readers--
}

// Lock acquires the lock exclusive. The thread is disabled while readers
// or another writer hold the lock; while it waits, new readers are held
// off (writer preference).
func (l *RWMutex) Lock(t *Thread) {
	l.waitingWriters++
	t.visible(pendingOp{kind: opWLock, rw: l})
	l.waitingWriters--
	l.writer = t
	t.sinkAcquire(l.key)
}

// Unlock releases the exclusive hold; releasing without holding crashes.
func (l *RWMutex) Unlock(t *Thread) {
	t.visible(pendingOp{kind: opWUnlock, rw: l})
	if l.writer != t {
		t.crash("Unlock of %s not held by %s", l.key, t.name)
	}
	t.sinkRelease(l.key)
	l.writer = nil
}
