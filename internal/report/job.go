package report

import (
	"fmt"

	"sctbench/internal/explore"
)

// JobCSVHeader is the column list of JobCSVRow. The row carries both the
// verdict columns (found/first/buggy/complete/status) and the exact work
// tallies (total/executions/steps), because a fully completed distributed
// run is bit-identical to the sequential one for DFS/IPB/IDB — the CI
// smoke diffs the whole row, not just the verdict.
const JobCSVHeader = "bench,technique,found,bound,first,total,new,buggy,complete,limit_hit,worker_panics,executions,steps,status\n"

// JobCSVRow renders one exploration result as a single CSV row matching
// JobCSVHeader.
func JobCSVRow(benchName, technique string, res *explore.Result) string {
	return fmt.Sprintf("%s,%s,%v,%d,%d,%d,%d,%d,%v,%v,%d,%d,%d,%s\n",
		benchName, technique, res.BugFound, res.Bound, res.SchedulesToFirstBug,
		res.Schedules, res.NewSchedules, res.BuggySchedules, res.Complete,
		res.LimitHit, res.WorkerPanics, res.Executions, res.TotalSteps, res.Stopped)
}
