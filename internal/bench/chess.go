package bench

// The CHESS benchmarks: test cases for the Cilk-style WorkStealQueue used
// to evaluate preemption bounding in prior work [Musuvathi & Qadeer,
// PLDI'07; CHESS, OSDI'08]. We implement the deque itself — owner
// push/take at the tail, a thief stealing at the head — with two planted
// bugs from the original's history:
//
//   - take reads the head *before* publishing the decremented tail, so its
//     "more than one element left" fast path can trust a stale head;
//   - steal claims the head with a check-then-act (load, verify, store)
//     instead of an atomic compare-and-swap.
//
// Together these let an owner and a thief obtain the same item when their
// windows interleave — which takes two precisely placed context switches,
// the famous "WSQ needs two preemptions" result. The checker asserts
// exactly-once delivery of every pushed item.
//
// The I/S variants wrap the same race in semaphore-gated hand-off traffic.
// Every blocking operation is a free (non-preemptive) branch point for
// preemption bounding but costs a delay under delay bounding, so the
// zero-preemption schedule space alone exceeds the 10,000-schedule limit
// and IPB misses the bugs that IDB still finds — the Table 3 signature of
// chess.IWSQ/IWSQWS/SWSQ versus chess.WSQ.
//
// Registered in compiled form (New, flat engine) with the closure original
// as the Ref equivalence twin.

import "sctbench/internal/vthread"

// wsq is the work-stealing deque under test (closure form). head/tail are
// SC atomics (always visible); the item buffer is a shared array.
type wsq struct {
	head, tail *vthread.Atomic
	items      *vthread.Array
}

func newWSQ(t *vthread.Thread, capacity int) *wsq {
	return &wsq{
		head:  t.NewAtomic("wsq.head", 0),
		tail:  t.NewAtomic("wsq.tail", 0),
		items: t.NewArray("wsq.items", capacity),
	}
}

// push appends at the tail (owner only).
func (q *wsq) push(t *vthread.Thread, v int) {
	tl := q.tail.Load(t)
	q.items.Set(t, tl, v)
	q.tail.Store(t, tl+1)
}

// take removes from the tail (owner only). Planted bug: the head is read
// first, so the fast path's "no conflict possible" conclusion can rest on
// a stale value while a thief advances the head underneath it.
func (q *wsq) take(t *vthread.Thread) (int, bool) {
	hd := q.head.Load(t) // BUG: stale by the time it is trusted below
	tl := q.tail.Load(t) - 1
	if tl < hd {
		return 0, false // empty
	}
	q.tail.Store(t, tl)
	v := q.items.Get(t, tl)
	if tl > hd {
		return v, true // fast path: trusts the stale head
	}
	// Last element: arbitrate with thieves through the head.
	ok := q.head.CAS(t, hd, hd+1)
	q.tail.Store(t, hd+1)
	if !ok {
		return 0, false
	}
	return v, true
}

// steal removes from the head (thief). Planted bug: check-then-act instead
// of compare-and-swap — the verify and the store are separate operations.
func (q *wsq) steal(t *vthread.Thread) (int, bool) {
	hd := q.head.Load(t)
	tl := q.tail.Load(t)
	if hd >= tl {
		return 0, false
	}
	v := q.items.Get(t, hd)
	if q.head.Load(t) != hd { // BUG: not atomic with the store below
		return 0, false
	}
	q.head.Store(t, hd+1)
	return v, true
}

// wsqProgram runs an owner (push n, then drain n takes, then a tail of
// bookkeeping traffic) and a thief (sts steal attempts) over the deque and
// checks exactly-once delivery.
//
// pingPong > 0 (the I/S variants) additionally spawns two gate threads,
// created *before* the owner and thief, that hand a token back and forth
// pingPong times. While the owner and thief are parked, every gate block
// point offers three enabled threads — a free, zero-preemption branch — so
// the zero-preemption schedule space is exponential in pingPong and
// iterative preemption bounding exhausts its 10,000-schedule budget
// without ever testing a preemption. The duplicate-delivery race itself
// needs only one delay (park the owner between its tail read and tail
// publish; the thief's steals run under the deterministic scheduler), so
// iterative delay bounding still finds it — the Table 3 signature of
// chess.IWSQ/IWSQWS/SWSQ. The owner's tail traffic keeps depth-first
// search busy among harmless deep reorderings.
func wsqProgram(n, sts, pingPong, tail int) vthread.Program {
	return func(t0 *vthread.Thread) {
		q := newWSQ(t0, n+1)
		seen := t0.NewArray("seen", n)
		bookkeeping := t0.NewVar("bookkeeping", 0)
		record := func(tw *vthread.Thread, v int) {
			c := seen.Get(tw, v)
			tw.Assert(c == 0, "item %d obtained twice", v)
			seen.Set(tw, v, c+1)
		}
		var gates []*vthread.Thread
		if pingPong > 0 {
			a := t0.NewSem("gate.a", 0)
			b := t0.NewSem("gate.b", 0)
			gates = append(gates,
				t0.Spawn(func(tw *vthread.Thread) {
					for i := 0; i < pingPong; i++ {
						a.P(tw)
						b.V(tw)
					}
				}),
				t0.Spawn(func(tw *vthread.Thread) {
					for i := 0; i < pingPong; i++ {
						a.V(tw)
						b.P(tw)
					}
				}),
			)
		}
		owner := t0.Spawn(func(tw *vthread.Thread) {
			for i := 0; i < n; i++ {
				q.push(tw, i)
			}
			for i := 0; i < n; i++ {
				if v, ok := q.take(tw); ok {
					record(tw, v)
				}
			}
			for i := 0; i < tail; i++ {
				bookkeeping.Add(tw, 1)
			}
		})
		thief := t0.Spawn(func(tw *vthread.Thread) {
			for s := 0; s < sts; s++ {
				if v, ok := q.steal(tw); ok {
					record(tw, v)
				}
			}
		})
		t0.Join(owner)
		t0.Join(thief)
		for _, g := range gates {
			t0.Join(g)
		}
	}
}

// compiledWSQ is wsqProgram translated op-for-op to the builder DSL: the
// deque methods are inlined as instruction sequences with registers
// standing in for the Go locals, preserving every visible operation and
// its order.
func compiledWSQ(n, sts, pingPong, tail int) *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	head := p.Atomic("wsq.head", 0)
	tailA := p.Atomic("wsq.tail", 0)
	items := p.Array("wsq.items", n+1)
	seen := p.Array("seen", n)
	bookkeeping := p.Var("bookkeeping", 0)

	// record(v): the exactly-once check.
	record := func(c *vthread.Code, v vthread.Reg) {
		cnt := c.Get(seen, v)
		c.Assert(eq(cnt, 0), "item %d obtained twice", v)
		c.SetAt(seen, v, plus(cnt, 1))
	}

	owner := p.Body(0, 0)
	for i := 0; i < n; i++ {
		// push(i)
		tl := owner.LoadA(tailA)
		owner.SetAt(items, tl, i)
		owner.StoreA(tailA, plus(tl, 1))
	}
	for i := 0; i < n; i++ {
		// v, ok := take(); if ok { record(v) }
		hd := owner.LoadA(head)
		tl0 := owner.LoadA(tailA)
		tl := owner.Let(plus(tl0, -1))
		v := owner.Let(0)
		ok := owner.Let(0)
		owner.IfElse(ltr(tl, hd), func() {}, func() {
			owner.StoreA(tailA, tl)
			g := owner.Get(items, tl)
			owner.IfElse(gtr(tl, hd), func() {
				owner.Set(v, g)
				owner.Set(ok, 1)
			}, func() {
				cas := owner.CAS(head, hd, plus(hd, 1))
				owner.StoreA(tailA, plus(hd, 1))
				owner.If(ne(cas, 0), func() {
					owner.Set(v, g)
					owner.Set(ok, 1)
				})
			})
		})
		owner.If(ne(ok, 0), func() { record(owner, v) })
	}
	loopN(owner, tail, func() { owner.AddVar(bookkeeping, 1) })

	thief := p.Body(0, 0)
	for s := 0; s < sts; s++ {
		// v, ok := steal(); if ok { record(v) }
		hd := thief.LoadA(head)
		tl := thief.LoadA(tailA)
		thief.If(ltr(hd, tl), func() {
			g := thief.Get(items, hd)
			h2 := thief.LoadA(head)
			thief.If(eqr(h2, hd), func() {
				thief.StoreA(head, plus(hd, 1))
				record(thief, g)
			})
		})
	}

	mn := p.Main()
	var gates []vthread.OReg
	if pingPong > 0 {
		a := p.Sem("gate.a", 0)
		b := p.Sem("gate.b", 0)
		g1 := p.Body(0, 0)
		loopN(g1, pingPong, func() {
			g1.P(a)
			g1.V(b)
		})
		g2 := p.Body(0, 0)
		loopN(g2, pingPong, func() {
			g2.V(a)
			g2.P(b)
		})
		gates = append(gates, mn.Spawn(g1), mn.Spawn(g2))
	}
	ho := mn.Spawn(owner)
	ht := mn.Spawn(thief)
	mn.Join(ho)
	mn.Join(ht)
	joinRegs(mn, gates)
	return p.Build()
}

func init() {
	register(&Benchmark{
		ID: 32, Name: "chess.IWSQ", Suite: "CHESS", Threads: 5,
		BugKind: vthread.FailAssert,
		Desc:    "work-stealing queue amid gate traffic: zero-preemption branching buries IPB",
		New:     func() vthread.Runnable { return compiledWSQ(6, 3, 20, 8) },
		Ref:     func() vthread.Program { return wsqProgram(6, 3, 20, 8) },
	})
	register(&Benchmark{
		ID: 33, Name: "chess.IWSQWS", Suite: "CHESS", Threads: 5,
		BugKind: vthread.FailAssert,
		Desc:    "work-stealing queue with steal-half traffic: more items, same buried race",
		New:     func() vthread.Runnable { return compiledWSQ(8, 4, 24, 8) },
		Ref:     func() vthread.Program { return wsqProgram(8, 4, 24, 8) },
	})
	register(&Benchmark{
		ID: 34, Name: "chess.SWSQ", Suite: "CHESS", Threads: 5,
		BugKind: vthread.FailAssert,
		Desc:    "synchronized work-stealing queue stress: longest gated run of the race",
		New:     func() vthread.Runnable { return compiledWSQ(10, 5, 28, 8) },
		Ref:     func() vthread.Program { return wsqProgram(10, 5, 28, 8) },
	})
	register(&Benchmark{
		ID: 35, Name: "chess.WSQ", Suite: "CHESS", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "the classic WorkStealQueue owner/thief race",
		New:     func() vthread.Runnable { return compiledWSQ(3, 2, 0, 0) },
		Ref:     func() vthread.Program { return wsqProgram(3, 2, 0, 0) },
	})
}
