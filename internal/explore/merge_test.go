package explore

// The canonical-merge contract under forfeiture and the distribution
// hooks' equivalence to the sequential drivers. mergeUnits is the one
// place where duplicate, panicked or abandoned work is reconciled, so its
// properties — canonical order, exact budget, forfeited counts dropped but
// honest work kept — are pinned directly here; the end-to-end distributed
// equivalence (coordinator, leases, failover) lives in internal/dist.

import (
	"fmt"
	"testing"
	"time"

	"sctbench/internal/vthread"
)

// TestMergeUnitsForfeited pins the forfeiture contract: a panicked unit's
// schedule counts, bug offsets and witness are dropped, its run statistics
// and work tallies still fold in, and the panic surfaces as workerPanics.
func TestMergeUnitsForfeited(t *testing.T) {
	units := []*unitResult{
		// Arrives out of canonical order: key [2] sorts after [1 0].
		{key: []int{2}, schedules: 4, buggyOffs: []int{2},
			failure:    &vthread.Failure{Kind: vthread.FailAssert, Message: "late"},
			executions: 4},
		// Forfeited: panicked mid-unit with 3 schedules and a "bug" that
		// must NOT be reported.
		{key: []int{1, 0}, schedules: 3, buggyOffs: []int{1},
			failure:  &vthread.Failure{Kind: vthread.FailAssert, Message: "forfeited"},
			panicMsg: "worker died", executions: 5, steps: 50, aborted: 1,
			runStats: runStats{maxEnabled: 7, schedPts: 9, threads: 5}},
		// The canonical head: the donor's nil key sorts first.
		{key: nil, schedules: 2, executions: 2, steps: 8},
	}
	m := mergeUnits(units, 100)
	if m.schedules != 6 {
		t.Errorf("schedules = %d, want 6 (forfeited unit's 3 dropped)", m.schedules)
	}
	if m.workerPanics != 1 || m.panicMsg != "worker died" {
		t.Errorf("workerPanics = %d (%q), want 1 (worker died)", m.workerPanics, m.panicMsg)
	}
	// The surviving bug is at canonical offset 2 (donor) + 2 (within its
	// own unit) = 4; the forfeited unit's earlier "bug" must not win.
	if !m.bugFound || m.firstBugOffset != 4 || m.failure.Message != "late" {
		t.Errorf("bug = %v at %d (%+v), want offset 4 from the surviving unit",
			m.bugFound, m.firstBugOffset, m.failure)
	}
	if m.buggy != 1 {
		t.Errorf("buggy = %d, want 1", m.buggy)
	}
	// Honest work: the forfeited unit's executions/steps/aborts and run
	// statistics describe executions that really happened.
	if m.executions != 11 || m.steps != 58 || m.aborted != 1 {
		t.Errorf("work = %d execs / %d steps / %d aborts, want 11/58/1",
			m.executions, m.steps, m.aborted)
	}
	if m.maxEnabled != 7 || m.schedPts != 9 || m.threads != 5 {
		t.Errorf("runStats = %d/%d/%d, want 7/9/5 (folded from the forfeited unit)",
			m.maxEnabled, m.schedPts, m.threads)
	}
}

// TestMergeUnitsForfeitedBudget: the budget still truncates canonically
// when a forfeited unit sits between surviving ones — forfeited schedules
// do not consume budget.
func TestMergeUnitsForfeitedBudget(t *testing.T) {
	units := []*unitResult{
		{key: nil, schedules: 3},
		{key: []int{1}, schedules: 5, panicMsg: "gone"},
		{key: []int{2}, schedules: 4, buggyOffs: []int{4}},
	}
	m := mergeUnits(units, 5)
	if m.schedules != 5 || !m.truncated {
		t.Errorf("schedules = %d truncated = %v, want 5/true", m.schedules, m.truncated)
	}
	// The last unit's bug sits at its offset 4, i.e. canonical 3+4 = 7,
	// beyond the budget of 5: it must not be reported.
	if m.bugFound {
		t.Errorf("bug beyond the budget cut was reported")
	}
	if m.workerPanics != 1 {
		t.Errorf("workerPanics = %d, want 1", m.workerPanics)
	}
}

// distRun explores cfg's whole space through the distribution hooks:
// shard into want units, run every unit to completion via RunUnit, merge
// canonically, and fold into a Result exactly as the coordinator does for
// a single-pass technique.
func distRun(t *testing.T, cfg Config, tech Technique, want int) *Result {
	t.Helper()
	set, err := ShardTree(cfg, tech, 0, want)
	if err != nil {
		t.Fatalf("ShardTree: %v", err)
	}
	done := make([]*UnitResultState, 0, len(set.Done)+len(set.Units))
	for i := range set.Done {
		done = append(done, &set.Done[i])
	}
	for i := range set.Units {
		ur, err := RunUnit(cfg, &set.Units[i], cfg.Limit, nil)
		if err != nil {
			t.Fatalf("RunUnit(%v): %v", set.Units[i].Key, err)
		}
		if ur.Done == nil {
			t.Fatalf("RunUnit(%v): no result", set.Units[i].Key)
		}
		done = append(done, ur.Done)
	}
	m := MergeUnitStates(done, cfg.Limit)
	r := &Result{Technique: tech}
	m.FoldInto(r, 0)
	r.Schedules = m.Schedules
	if m.Truncated {
		r.LimitHit = true
		r.Stopped = StopLimit
	} else if m.WorkerPanics == 0 {
		r.Complete = true
	}
	return r
}

// TestDistHooksEquivalence: shard + per-unit RunUnit + canonical merge is
// bit-identical to the sequential driver on a completed DFS, however many
// units the tree was cut into. (Truncated runs are verdict-level — the
// per-unit budgets over-explore and the merge reapplies the exact limit —
// matching the pool's contract; the completed case is the bit-exact one.)
func TestDistHooksEquivalence(t *testing.T) {
	const limit = 20000
	for _, name := range ckBenchNames {
		for _, want := range []int{1, 2, 5} {
			t.Run(fmt.Sprintf("%s/units=%d", name, want), func(t *testing.T) {
				base := RunDFS(ckCfg(t, name, limit))
				if !base.Complete {
					t.Fatalf("baseline did not complete (%d schedules); raise the limit", base.Schedules)
				}
				got := distRun(t, ckCfg(t, name, limit), DFS, want)
				requireSameResult(t, "dist", base, got)
			})
		}
	}
}

// TestDistHooksParkResume: parking a unit after every execution and
// re-dispatching the parked frontier loses nothing — the final merged
// result is still bit-identical to the sequential run.
func TestDistHooksParkResume(t *testing.T) {
	const limit = 20000
	cfg := ckCfg(t, "CS.account_bad", limit)
	base := RunDFS(cfg)
	if !base.Complete {
		t.Fatalf("baseline did not complete; raise the limit")
	}

	shardCfg := ckCfg(t, "CS.account_bad", limit)
	set, err := ShardTree(shardCfg, DFS, 0, 3)
	if err != nil {
		t.Fatalf("ShardTree: %v", err)
	}
	var done []*UnitResultState
	for i := range set.Done {
		done = append(done, &set.Done[i])
	}
	for i := range set.Units {
		us := &set.Units[i]
		for hops := 0; ; hops++ {
			if hops > base.Executions+10 {
				t.Fatalf("unit %v never completed", set.Units[i].Key)
			}
			// Park at the fourth poll: three executions per dispatch.
			polls := 0
			ur, err := RunUnit(shardCfg, us, 0, func() UnitAction {
				polls++
				if polls > 3 {
					return UnitPark
				}
				return UnitContinue
			})
			if err != nil {
				t.Fatalf("RunUnit: %v", err)
			}
			if ur.Done != nil {
				done = append(done, ur.Done)
				break
			}
			us = ur.Parked
		}
	}
	m := MergeUnitStates(done, shardCfg.Limit)
	r := &Result{Technique: DFS}
	m.FoldInto(r, 0)
	r.Schedules = m.Schedules
	if m.WorkerPanics == 0 && !m.Truncated {
		r.Complete = true
	}
	requireSameResult(t, "park-resume", base, r)
}

// TestDistHooksDPORVerdict: distributed DPOR keeps the pool's contract —
// verdict and completeness survive sharding even though duplicated
// reversals may inflate counts.
func TestDistHooksDPORVerdict(t *testing.T) {
	for _, name := range ckBenchNames {
		t.Run(name, func(t *testing.T) {
			cfg := ckCfg(t, name, 500)
			base := RunDPOR(cfg)
			got := distRun(t, ckCfg(t, name, 500), DPOR, 4)
			if base.BugFound != got.BugFound {
				t.Errorf("BugFound = %v, want %v", got.BugFound, base.BugFound)
			}
			if base.Complete != got.Complete {
				t.Errorf("Complete = %v, want %v", got.Complete, base.Complete)
			}
		})
	}
}

// TestResumeAllUnitsDone: a checkpoint may carry only completed units —
// the stop landed right after the last unit finished, before the pass was
// merged (a drained coordinator writes exactly this shape). Resuming it
// must terminate (regression: addJobUnits never closed a born-drained
// job's done channel, hanging waitTree forever) and fold the done units
// into the sequential result.
func TestResumeAllUnitsDone(t *testing.T) {
	const limit = 20000
	base := RunDFS(ckCfg(t, "CS.account_bad", limit))
	if !base.Complete {
		t.Fatalf("baseline did not complete; raise the limit")
	}

	cfg := ckCfg(t, "CS.account_bad", limit)
	set, err := ShardTree(cfg, DFS, 0, 3)
	if err != nil {
		t.Fatalf("ShardTree: %v", err)
	}
	ps := &PoolState{BudgetLeft: limit, ExecLimitLeft: int64(DefaultMaxExecutions)}
	ps.Done = append(ps.Done, set.Done...)
	for i := range set.Units {
		ur, err := RunUnit(cfg, &set.Units[i], limit, nil)
		if err != nil || ur.Done == nil {
			t.Fatalf("RunUnit(%v): %+v, %v", set.Units[i].Key, ur, err)
		}
		ps.Done = append(ps.Done, *ur.Done)
	}
	for i := range ps.Done {
		ps.Execs += int64(ps.Done[i].Executions)
		ps.Steps += ps.Done[i].Steps
		ps.Aborts += int64(ps.Done[i].Aborted)
	}
	ps.OwnExecs = ps.Execs
	ck := &Checkpoint{Version: CheckpointVersion, Technique: "DFS",
		Limit: limit, Seed: cfg.Seed, MaxExecutions: DefaultMaxExecutions,
		Result: &Result{Technique: DFS}, Pool: ps}

	rcfg := ckCfg(t, "CS.account_bad", limit)
	type out struct {
		r   *Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		r, err := Resume(ck, rcfg)
		ch <- out{r, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("Resume: %v", o.err)
		}
		if !o.r.Complete || o.r.Schedules != base.Schedules ||
			o.r.BugFound != base.BugFound || o.r.Executions != base.Executions {
			t.Errorf("resumed all-done checkpoint diverged: complete=%v schedules=%d "+
				"bug=%v execs=%d, want %v/%d/%v/%d", o.r.Complete, o.r.Schedules,
				o.r.BugFound, o.r.Executions,
				base.Complete, base.Schedules, base.BugFound, base.Executions)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Resume hung on an all-done checkpoint")
	}
}
