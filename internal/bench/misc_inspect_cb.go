package bench

// CB (Concurrency Bugs suite of Yu & Narayanasamy), Inspect and the two
// miscellaneous benchmarks. Substitutions: CB.aget's network download is
// modelled by an in-memory chunk source (the paper itself modelled the
// network functions to read from a file) with the interrupt handler as an
// asynchronously spawned thread, and its output checker (a separate
// program in the original, added to the benchmark by the paper) is the
// final assertion. misc.safestack models Vyukov's lock-free stack bug,
// which needs three threads and at least five preemptions — found by no
// technique within the limit, exactly as in Table 3.
//
// All entries but misc.safestack are registered in compiled (builder-DSL)
// form with their closure originals as Ref twins, like the rest of the
// registry. misc.safestack deliberately stays closure-form: it is the one
// live exerciser of the goroutine reference engine left in the registry,
// keeping the automatic closure-program fallback path honest.

import "sctbench/internal/vthread"

func init() {
	register(&Benchmark{
		ID: 0, Name: "CB.aget-bug2", Suite: "CB", Threads: 4,
		BugKind: vthread.FailAssert,
		Desc:    "download resume: interrupt handler saves progress while workers still update it",
		New:     func() vthread.Runnable { return compiledAgetBug2() },
		Ref:     refAgetBug2,
	})

	register(&Benchmark{
		ID: 1, Name: "CB.pbzip2-0.9.4", Suite: "CB", Threads: 4,
		BugKind: vthread.FailCrash,
		Desc:    "main frees the work-queue mutex while a consumer can still lock it",
		New:     func() vthread.Runnable { return compiledPbzip2() },
		Ref:     refPbzip2,
	})

	register(&Benchmark{
		ID: 2, Name: "CB.stringbuffer-jdk1.4", Suite: "CB", Threads: 2,
		BugKind: vthread.FailAssert,
		Desc:    "StringBuffer.append: length checked, then the source is erased, then copied",
		New:     func() vthread.Runnable { return compiledStringbuffer() },
		Ref:     refStringbuffer,
	})

	register(&Benchmark{
		ID: 36, Name: "inspect.qsort_mt", Suite: "Inspect", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "multithreaded quicksort: worker-done flag set before the final swap lands",
		New:     func() vthread.Runnable { return compiledQsortMt() },
		Ref:     refQsortMt,
	})

	register(&Benchmark{
		ID: 37, Name: "misc.ctrace-test", Suite: "Miscellaneous", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "ctrace debugging library: unlocked trace-list insert drops an entry",
		New:     func() vthread.Runnable { return compiledCtraceTest() },
		Ref:     refCtraceTest,
	})

	register(&Benchmark{
		ID: 38, Name: "misc.safestack", Suite: "Miscellaneous", Threads: 4,
		BugKind: vthread.FailAssert,
		Desc:    "Vyukov lock-free stack: duplicate pop needs 3 threads and ≥5 preemptions",
		New:     func() vthread.Runnable { return safestack() },
	})
}

func refAgetBug2() vthread.Program {
	return func(t0 *vthread.Thread) {
		bwritten := t0.NewVar("bwritten", 0) // racy progress counter
		saved := t0.NewVar("saved", -1)
		// Two downloader threads append chunks and bump the shared
		// progress counter without synchronisation.
		worker := func(chunks int) vthread.Program {
			return func(tw *vthread.Thread) {
				for i := 0; i < chunks; i++ {
					bwritten.Add(tw, 10) // load+store: the racy update
				}
			}
		}
		ts := []*vthread.Thread{
			t0.Spawn(worker(2)),
			t0.Spawn(worker(2)),
			// The signal handler (modelled as an async thread, as
			// the paper did): snapshots progress for the resume
			// file.
			t0.Spawn(func(tw *vthread.Thread) {
				saved.Store(tw, bwritten.Load(tw))
			}),
		}
		joinAll(t0, ts)
		// Output check (§4.2): the resume record must equal a
		// consistent prefix: a torn counter update makes it
		// impossible to resume. Lost updates leave bwritten short.
		total := bwritten.Load(t0)
		t0.Assert(total == 40, "lost progress update: bwritten=%d, want 40", total)
	}
}

func compiledAgetBug2() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	bwritten := p.Var("bwritten", 0)
	saved := p.Var("saved", -1)
	worker := func() *vthread.Code {
		c := p.Body(0, 0)
		loopN(c, 2, func() { c.AddVar(bwritten, 10) })
		return c
	}
	w1, w2 := worker(), worker()
	sig := p.Body(0, 0)
	snap := sig.Load(bwritten)
	sig.Store(saved, snap)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(w1), mn.Spawn(w2), mn.Spawn(sig)}
	joinRegs(mn, hs)
	total := mn.Load(bwritten)
	mn.Assert(eq(total, 40), "lost progress update: bwritten=%d, want 40", total)
	return p.Build()
}

func refPbzip2() vthread.Program {
	return func(t0 *vthread.Thread) {
		qm := t0.NewMutex("queue")
		items := t0.NewSem("items", 0)
		fifo := t0.NewVar("fifo", 0)
		consumer := func(tw *vthread.Thread) {
			items.P(tw)
			qm.Lock(tw) // crashes if the teardown already destroyed it
			fifo.Add(tw, -1)
			qm.Unlock(tw)
		}
		c1 := t0.Spawn(consumer)
		c2 := t0.Spawn(consumer)
		qm.Lock(t0)
		fifo.Store(t0, 2)
		qm.Unlock(t0)
		items.V(t0)
		items.V(t0)
		// Bug (pbzip2 0.9.4): the queue is torn down without
		// waiting for the consumers to drain it.
		third := t0.Spawn(func(tw *vthread.Thread) {
			qm.Destroy(tw)
		})
		t0.Join(c1)
		t0.Join(c2)
		t0.Join(third)
	}
}

func compiledPbzip2() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	qm := p.Mutex("queue")
	items := p.Sem("items", 0)
	fifo := p.Var("fifo", 0)
	consumer := func() *vthread.Code {
		c := p.Body(0, 0)
		c.P(items)
		c.Lock(qm)
		c.AddVar(fifo, -1)
		c.Unlock(qm)
		return c
	}
	c1b, c2b := consumer(), consumer()
	third := p.Body(0, 0)
	third.DestroyMutex(qm)
	mn := p.Main()
	h1 := mn.Spawn(c1b)
	h2 := mn.Spawn(c2b)
	mn.Lock(qm)
	mn.Store(fifo, 2)
	mn.Unlock(qm)
	mn.V(items)
	mn.V(items)
	h3 := mn.Spawn(third)
	mn.Join(h1)
	mn.Join(h2)
	mn.Join(h3)
	return p.Build()
}

func refStringbuffer() vthread.Program {
	return func(t0 *vthread.Thread) {
		// sb2 is the source buffer; its length is racy between the
		// appender's check and its copy (the JDK 1.4 bug).
		len2 := t0.NewVar("len2", 4)
		data2 := t0.NewArray("data2", 4)
		t0.Spawn(func(tw *vthread.Thread) {
			// erase(): truncate the source.
			len2.Store(tw, 0)
		})
		// append(sb2): check-then-act over the source length.
		n := len2.Load(t0)
		copied := 0
		for i := 0; i < n; i++ {
			cur := len2.Load(t0)
			if i < cur || cur == 4 {
				_ = data2.Get(t0, i)
				copied++
			}
		}
		t0.Assert(copied == 0 || copied == n,
			"torn append: copied %d of %d characters", copied, n)
	}
}

func compiledStringbuffer() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	len2 := p.Var("len2", 4)
	data2 := p.Array("data2", 4)
	er := p.Body(0, 0)
	er.Store(len2, 0)
	mn := p.Main()
	mn.Spawn(er)
	n := mn.Load(len2)
	copied := mn.Let(0)
	i := mn.Let(0)
	mn.While(ltr(i, n), func() {
		cur := mn.Load(len2)
		inWindow := func(t *vthread.Thread) bool {
			return t.Reg(i) < t.Reg(cur) || t.Reg(cur) == 4
		}
		mn.If(inWindow, func() {
			mn.Get(data2, i)
			mn.Set(copied, plus(copied, 1))
		})
		mn.Set(i, plus(i, 1))
	})
	consistent := func(t *vthread.Thread) bool {
		return t.Reg(copied) == 0 || t.Reg(copied) == t.Reg(n)
	}
	mn.Assert(consistent, "torn append: copied %d of %d characters", copied, n)
	return p.Build()
}

func refQsortMt() vthread.Program {
	return func(t0 *vthread.Thread) {
		arr := t0.NewArray("arr", 4)
		done := t0.NewSem("done", 0)
		cmps := t0.NewVar("comparisons", 0)
		// Pre-fill unsorted with distinct values so a half-applied
		// swap ([3,1] → [1,1]) is distinguishable from a sorted
		// half.
		for i, v := range []int{3, 1, 2, 0} {
			arr.Set(t0, i, v)
		}
		sortHalf := func(lo int) vthread.Program {
			return func(tw *vthread.Thread) {
				// Tiny bubble over two elements.
				a := arr.Get(tw, lo)
				b := arr.Get(tw, lo+1)
				if a > b {
					arr.Set(tw, lo, b)
					// Bug: completion signalled before the second
					// store of the swap lands.
					done.V(tw)
					arr.Set(tw, lo+1, a)
				} else {
					done.V(tw)
				}
				// Comparison-count bookkeeping after the sort: deep,
				// harmless interleavings that keep depth-first
				// search away from the shallow buggy window.
				for i := 0; i < 8; i++ {
					cmps.Add(tw, 1)
				}
			}
		}
		w1 := t0.Spawn(sortHalf(0))
		w2 := t0.Spawn(sortHalf(2))
		// Main merges as soon as both halves signal completion —
		// which can be before the last swap store.
		done.P(t0)
		done.P(t0)
		a0, a1 := arr.Get(t0, 0), arr.Get(t0, 1)
		a2, a3 := arr.Get(t0, 2), arr.Get(t0, 3)
		t0.Assert(a0 < a1 && a2 < a3, "half not sorted: [%d %d %d %d]", a0, a1, a2, a3)
		t0.Join(w1)
		t0.Join(w2)
	}
}

func compiledQsortMt() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	arr := p.Array("arr", 4)
	done := p.Sem("done", 0)
	cmps := p.Var("comparisons", 0)
	sh := p.Body(1, 0)
	lo := sh.Arg(0)
	a := sh.Get(arr, lo)
	b := sh.Get(arr, plus(lo, 1))
	sh.IfElse(gtr(a, b), func() {
		sh.SetAt(arr, lo, b)
		sh.V(done)
		sh.SetAt(arr, plus(lo, 1), a)
	}, func() {
		sh.V(done)
	})
	loopN(sh, 8, func() { sh.AddVar(cmps, 1) })
	mn := p.Main()
	for i, v := range []int{3, 1, 2, 0} {
		mn.SetAt(arr, i, v)
	}
	w1 := mn.Spawn(sh, 0)
	w2 := mn.Spawn(sh, 2)
	mn.P(done)
	mn.P(done)
	a0 := mn.Get(arr, 0)
	a1 := mn.Get(arr, 1)
	a2 := mn.Get(arr, 2)
	a3 := mn.Get(arr, 3)
	sorted := func(t *vthread.Thread) bool {
		return t.Reg(a0) < t.Reg(a1) && t.Reg(a2) < t.Reg(a3)
	}
	mn.Assert(sorted, "half not sorted: [%d %d %d %d]", a0, a1, a2, a3)
	mn.Join(w1)
	mn.Join(w2)
	return p.Build()
}

func refCtraceTest() vthread.Program {
	return func(t0 *vthread.Thread) {
		count := t0.NewVar("count", 0) // racy list length
		entries := t0.NewArray("entries", 8)
		trace := func(tw *vthread.Thread, ev int) {
			n := count.Load(tw)
			entries.Set(tw, n, ev)
			count.Store(tw, n+1)
		}
		ts := []*vthread.Thread{
			t0.Spawn(func(tw *vthread.Thread) { trace(tw, 1); trace(tw, 2) }),
			t0.Spawn(func(tw *vthread.Thread) { trace(tw, 3) }),
		}
		joinAll(t0, ts)
		n := count.Load(t0)
		t0.Assert(n == 3, "trace list dropped entries: %d of 3", n)
	}
}

func compiledCtraceTest() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	count := p.Var("count", 0)
	entries := p.Array("entries", 8)
	emitTrace := func(c *vthread.Code, ev int) {
		n := c.Load(count)
		c.SetAt(entries, n, ev)
		c.Store(count, plus(n, 1))
	}
	t1 := p.Body(0, 0)
	emitTrace(t1, 1)
	emitTrace(t1, 2)
	t2 := p.Body(0, 0)
	emitTrace(t2, 3)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(t1), mn.Spawn(t2)}
	joinRegs(mn, hs)
	n := mn.Load(count)
	mn.Assert(eq(n, 3), "trace list dropped entries: %d of 3", n)
	return p.Build()
}

// safestack models the lock-free index-stack from Dmitry Vyukov's CHESS
// forum post: three worker threads repeatedly pop an index, use the owned
// slot, and push it back. Vyukov reports the bug "requires at least three
// threads and at least five preemptions"; we reproduce that character
// exactly: a duplicate pop alone is treated as a benign collision and
// self-repairs (the second popper backs off without taking ownership, as
// the real stack's versioned CAS loop does) — the failure is only
// declared when a collision lands while BOTH other workers are
// simultaneously inside their own pop windows, which takes a chain of
// five precisely placed context switches across all three threads. No
// technique reaches it within 10,000 schedules.
func safestack() vthread.Program {
	return func(t0 *vthread.Thread) {
		count := t0.NewVar("count", 3)
		slots := t0.NewArray("slots", 3)
		owned := t0.NewArray("owned", 3)
		inPop := t0.NewArray("inPop", 3)
		for i := 0; i < 3; i++ {
			slots.Set(t0, i, i)
		}
		pop := func(tw *vthread.Thread) int {
			n := count.Load(tw)
			if n == 0 {
				return -1
			}
			v := slots.Get(tw, n-1)
			count.Store(tw, n-1)
			return v
		}
		push := func(tw *vthread.Thread, v int) {
			n := count.Load(tw)
			if n < 3 {
				slots.Set(tw, n, v)
				count.Store(tw, n+1)
			}
		}
		worker := func(me int) vthread.Program {
			return func(tw *vthread.Thread) {
				for round := 0; round < 2; round++ {
					inPop.Set(tw, me, 1) // mid-pop-core marker
					idx := pop(tw)
					inPop.Set(tw, me, 0)
					if idx < 0 {
						continue
					}
					if owned.Get(tw, idx) != 0 {
						// Collision: the torn pop handed out a live index.
						// The real stack detects this via its version
						// counter and retries — a silent repair — except in
						// the five-preemption corner where the version
						// check itself is stale: the colliding index is the
						// final slot (the stack fully drained mid-race) and
						// both other workers sit inside their own pop cores
						// at this very moment.
						busy := 0
						for o := 0; o < 3; o++ {
							if o != me && inPop.Get(tw, o) == 1 {
								busy++
							}
						}
						tw.Assert(busy < 2 || idx != 0,
							"index %d handed to two threads while all three raced", idx)
						continue
					}
					owned.Set(tw, idx, 1)
					owned.Set(tw, idx, 0)
					push(tw, idx)
				}
			}
		}
		ts := []*vthread.Thread{t0.Spawn(worker(0)), t0.Spawn(worker(1)), t0.Spawn(worker(2))}
		joinAll(t0, ts)
	}
}
